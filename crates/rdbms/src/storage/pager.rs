//! The pager: page allocation, caching, and the two backends.
//!
//! * [`Pager::in_memory`] keeps every page in a `Vec` — the default for the
//!   experiment harness (the paper's cost differences are algorithmic, not
//!   I/O-bound, and an in-memory backend removes disk noise).
//! * [`Pager::open_file`] stores pages in a file behind a clock-replacement
//!   buffer pool of configurable capacity, for durability tests and
//!   out-of-memory-sized documents.
//!
//! All read/write access goes through [`Pager::with_page`] /
//! [`Pager::with_page_mut`], which also maintain the I/O statistics the
//! benchmark harness reports (logical reads, backend reads/writes).

use super::page::{Page, PAGE_SIZE};
use crate::error::{DbError, DbResult};
use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Identifier of a page within a pager.
pub type PageId = u32;

/// Shared, cheaply-clonable I/O counters.
#[derive(Debug, Default)]
pub struct PagerStats {
    /// Pages served to callers (cache hits + misses).
    pub logical_reads: AtomicU64,
    /// Pages read from the backing file (misses). Always 0 in memory mode.
    pub physical_reads: AtomicU64,
    /// Pages written to the backing file. Always 0 in memory mode.
    pub physical_writes: AtomicU64,
    /// Frames evicted from the buffer pool. Always 0 in memory mode.
    pub evictions: AtomicU64,
}

/// A plain-value copy of every pager counter, for delta arithmetic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerSnapshot {
    /// Pages served to callers (cache hits + misses).
    pub logical_reads: u64,
    /// Pages read from the backing file (misses).
    pub physical_reads: u64,
    /// Pages written to the backing file.
    pub physical_writes: u64,
    /// Frames evicted from the buffer pool.
    pub evictions: u64,
}

impl PagerStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// Snapshot of `(logical_reads, physical_reads, physical_writes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.logical_reads.load(AtomicOrdering::Relaxed),
            self.physical_reads.load(AtomicOrdering::Relaxed),
            self.physical_writes.load(AtomicOrdering::Relaxed),
        )
    }

    /// Snapshot of every counter as plain values.
    pub fn full(&self) -> PagerSnapshot {
        PagerSnapshot {
            logical_reads: self.logical_reads.load(AtomicOrdering::Relaxed),
            physical_reads: self.physical_reads.load(AtomicOrdering::Relaxed),
            physical_writes: self.physical_writes.load(AtomicOrdering::Relaxed),
            evictions: self.evictions.load(AtomicOrdering::Relaxed),
        }
    }
}

struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
}

struct FileBackend {
    file: File,
    frames: Vec<Frame>,
    /// frame index per cached page; `usize::MAX` = not cached.
    map: std::collections::HashMap<PageId, usize>,
    capacity: usize,
    hand: usize,
}

enum Backend {
    Mem(Vec<Page>),
    File(FileBackend),
}

/// The pager. Interior-mutable so that read paths (query executors) can share
/// it immutably; the engine is single-threaded per database.
pub struct Pager {
    backend: RefCell<Backend>,
    n_pages: RefCell<u32>,
    stats: Arc<PagerStats>,
}

impl Pager {
    /// A pager whose pages live entirely in memory.
    pub fn in_memory() -> Self {
        Pager {
            backend: RefCell::new(Backend::Mem(Vec::new())),
            n_pages: RefCell::new(0),
            stats: Arc::new(PagerStats::default()),
        }
    }

    /// A file-backed pager with a buffer pool of `cache_pages` frames.
    /// Existing files are opened (their page count is derived from the file
    /// length); missing files are created.
    pub fn open_file(path: &Path, cache_pages: usize) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Storage(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        let n_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(Pager {
            backend: RefCell::new(Backend::File(FileBackend {
                file,
                frames: Vec::new(),
                map: std::collections::HashMap::new(),
                capacity: cache_pages.max(8),
                hand: 0,
            })),
            n_pages: RefCell::new(n_pages),
            stats: Arc::new(PagerStats::default()),
        })
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> Arc<PagerStats> {
        Arc::clone(&self.stats)
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        *self.n_pages.borrow()
    }

    /// Allocates a fresh, zeroed page and returns its id.
    pub fn allocate(&self) -> DbResult<PageId> {
        let id = *self.n_pages.borrow();
        *self.n_pages.borrow_mut() = id + 1;
        match &mut *self.backend.borrow_mut() {
            Backend::Mem(pages) => {
                pages.push(Page::new());
            }
            Backend::File(fb) => {
                // Extend the file eagerly so page reads never run past EOF.
                fb.file
                    .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
                fb.file.write_all(Page::new().bytes())?;
                PagerStats::bump(&self.stats.physical_writes);
            }
        }
        Ok(id)
    }

    /// Runs `f` with shared access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> DbResult<R> {
        PagerStats::bump(&self.stats.logical_reads);
        let mut backend = self.backend.borrow_mut();
        match &mut *backend {
            Backend::Mem(pages) => {
                let page = pages
                    .get(id as usize)
                    .ok_or_else(|| DbError::Storage(format!("page {id} out of range")))?;
                Ok(f(page))
            }
            Backend::File(fb) => {
                let idx = Self::pin(fb, id, &self.stats)?;
                Ok(f(&fb.frames[idx].page))
            }
        }
    }

    /// Runs `f` with exclusive access to the page, marking it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> DbResult<R> {
        PagerStats::bump(&self.stats.logical_reads);
        let mut backend = self.backend.borrow_mut();
        match &mut *backend {
            Backend::Mem(pages) => {
                let page = pages
                    .get_mut(id as usize)
                    .ok_or_else(|| DbError::Storage(format!("page {id} out of range")))?;
                Ok(f(page))
            }
            Backend::File(fb) => {
                let idx = Self::pin(fb, id, &self.stats)?;
                fb.frames[idx].dirty = true;
                Ok(f(&mut fb.frames[idx].page))
            }
        }
    }

    /// Ensures `id` is cached, evicting with the clock algorithm if the pool
    /// is full. Returns the frame index.
    fn pin(fb: &mut FileBackend, id: PageId, stats: &PagerStats) -> DbResult<usize> {
        if let Some(&idx) = fb.map.get(&id) {
            fb.frames[idx].referenced = true;
            return Ok(idx);
        }
        PagerStats::bump(&stats.physical_reads);
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        fb.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        fb.file.read_exact(&mut buf[..])?;
        let page = Page::from_bytes(buf);
        if fb.frames.len() < fb.capacity {
            let idx = fb.frames.len();
            fb.frames.push(Frame {
                id,
                page,
                dirty: false,
                referenced: true,
            });
            fb.map.insert(id, idx);
            return Ok(idx);
        }
        // Clock eviction: advance the hand until an unreferenced frame shows.
        let idx = loop {
            let i = fb.hand;
            fb.hand = (fb.hand + 1) % fb.frames.len();
            if fb.frames[i].referenced {
                fb.frames[i].referenced = false;
            } else {
                break i;
            }
        };
        PagerStats::bump(&stats.evictions);
        let victim = &mut fb.frames[idx];
        if victim.dirty {
            fb.file
                .seek(SeekFrom::Start(victim.id as u64 * PAGE_SIZE as u64))?;
            fb.file.write_all(victim.page.bytes())?;
            PagerStats::bump(&stats.physical_writes);
        }
        fb.map.remove(&victim.id);
        fb.map.insert(id, idx);
        fb.frames[idx] = Frame {
            id,
            page,
            dirty: false,
            referenced: true,
        };
        Ok(idx)
    }

    /// Writes all dirty frames back to the file (no-op in memory mode).
    pub fn flush(&self) -> DbResult<()> {
        let mut backend = self.backend.borrow_mut();
        if let Backend::File(fb) = &mut *backend {
            for frame in fb.frames.iter_mut().filter(|f| f.dirty) {
                fb.file
                    .seek(SeekFrom::Start(frame.id as u64 * PAGE_SIZE as u64))?;
                fb.file.write_all(frame.page.bytes())?;
                frame.dirty = false;
                PagerStats::bump(&self.stats.physical_writes);
            }
            fb.file.sync_all()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("pages", &self.page_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pager_basics() {
        let pager = Pager::in_memory();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        pager
            .with_page_mut(a, |p| {
                p.insert(b"hello").unwrap();
            })
            .unwrap();
        let got = pager.with_page(a, |p| p.get(0).unwrap().to_vec()).unwrap();
        assert_eq!(got, b"hello");
        assert!(pager.with_page(99, |_| ()).is_err());
    }

    #[test]
    fn file_pager_round_trips_through_eviction() {
        let dir = std::env::temp_dir().join(format!("ordxml-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evict.db");
        let _ = std::fs::remove_file(&path);
        {
            // Tiny pool: 8 frames, 64 pages -> lots of eviction.
            let pager = Pager::open_file(&path, 8).unwrap();
            for i in 0..64u32 {
                let id = pager.allocate().unwrap();
                pager
                    .with_page_mut(id, |p| {
                        p.insert(format!("page-{i}").as_bytes()).unwrap();
                    })
                    .unwrap();
            }
            for i in 0..64u32 {
                let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
                assert_eq!(got, format!("page-{i}").as_bytes());
            }
            pager.flush().unwrap();
            let (_, phys_reads, phys_writes) = pager.stats().snapshot();
            assert!(phys_reads > 0, "pool smaller than file must re-read");
            assert!(phys_writes >= 64);
        }
        // Reopen and verify durability.
        let pager = Pager::open_file(&path, 8).unwrap();
        assert_eq!(pager.page_count(), 64);
        for i in 0..64u32 {
            let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(got, format!("page-{i}").as_bytes());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_count_logical_reads() {
        let pager = Pager::in_memory();
        let id = pager.allocate().unwrap();
        for _ in 0..5 {
            pager.with_page(id, |_| ()).unwrap();
        }
        let (logical, physical, _) = pager.stats().snapshot();
        assert_eq!(logical, 5);
        assert_eq!(physical, 0);
    }
}
