//! The pager: page allocation, caching, transactions, and the two backends.
//!
//! * [`Pager::in_memory`] keeps every page in an epoch-published immutable
//!   page map — the default for the experiment harness (the paper's cost
//!   differences are algorithmic, not I/O-bound, and an in-memory backend
//!   removes disk noise). Readers validate a thread-local snapshot against
//!   the published epoch and never lock anything; writers copy-on-write
//!   the touched pages and publish at commit (see [`MemBackend`]).
//! * [`Pager::open_file`] stores pages in a file behind a clock-replacement
//!   buffer pool of configurable capacity, for durability tests and
//!   out-of-memory-sized documents.
//!
//! All read/write access goes through [`Pager::with_page`] /
//! [`Pager::with_page_mut`], which also maintain the I/O statistics the
//! benchmark harness reports (logical reads, backend reads/writes).
//!
//! # Transactions
//!
//! [`Pager::begin_txn`] starts page-level transaction tracking: the first
//! mutation of each page captures a pre-image, and rollback restores those
//! images (and the page count). With a WAL attached ([`Pager::attach_wal`])
//! the pager runs a no-steal policy — dirty pages are never evicted to the
//! database file — and commit appends every dirty page to the WAL (fsync =
//! the durability barrier) before writing it home. Without a WAL the legacy
//! checkpoint-based behavior is preserved: evictions may steal dirty pages,
//! and rollback rewrites stolen pre-images directly.
//!
//! All file I/O is routed through a shared [`FaultInjector`], so durability
//! tests can fail any write/fsync or crash at any WAL frame, fail or
//! corrupt any page read, or fill the disk.
//!
//! # Fault tolerance and degradation
//!
//! Page reads from the file backend are checksummed (FNV-1a per page,
//! recorded at write time) and wrapped in a bounded retry-with-backoff:
//! a transient read error or a corrupted image costs a retry (counted in
//! [`PagerStats::read_retries`]), not a failed statement. Write-path
//! failures are classified at the WAL commit barrier and at checkpoints:
//! a *persistent* failure (the injector's crashed state, or `ENOSPC` real
//! or injected) transitions the pager to [`StoreHealth::Degraded`] —
//! readers keep serving (the last published epoch in memory mode, the
//! WAL-protected committed state on file), [`Pager::begin_txn`] refuses
//! new writes with [`DbError::Degraded`], and [`Pager::try_restore`]
//! re-checkpoints and re-enables writes once I/O succeeds again.
//! Transient one-shot faults never degrade: the transaction rolls back
//! and the very next attempt may succeed.

use super::fault::{self, FaultInjector};
use super::page::{Page, PAGE_SIZE};
use super::wal::Wal;
use crate::error::{DbError, DbResult};
use crate::latch;
use crate::obs::WaitSite;
use crate::trace;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Identifier of a page within a pager.
pub type PageId = u32;

/// Frame id used for cache slots whose page was rolled back out of
/// existence; never allocated (page ids count up from 0).
const DEAD_FRAME: PageId = PageId::MAX;

/// Shared, cheaply-clonable I/O counters.
#[derive(Debug, Default)]
pub struct PagerStats {
    /// Pages served to callers (cache hits + misses).
    pub logical_reads: AtomicU64,
    /// Pages read from the backing file (misses). Always 0 in memory mode.
    pub physical_reads: AtomicU64,
    /// Pages written to the backing file. Always 0 in memory mode.
    pub physical_writes: AtomicU64,
    /// Frames evicted from the buffer pool. Always 0 in memory mode.
    pub evictions: AtomicU64,
    /// Page-read retries: transient read faults or checksum mismatches
    /// absorbed by the bounded retry policy. Always 0 in memory mode.
    pub read_retries: AtomicU64,
}

/// A plain-value copy of every pager counter, for delta arithmetic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerSnapshot {
    /// Pages served to callers (cache hits + misses).
    pub logical_reads: u64,
    /// Pages read from the backing file (misses).
    pub physical_reads: u64,
    /// Pages written to the backing file.
    pub physical_writes: u64,
    /// Frames evicted from the buffer pool.
    pub evictions: u64,
    /// Page-read retries absorbed by the retry policy.
    pub read_retries: u64,
}

impl PagerStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// Snapshot of `(logical_reads, physical_reads, physical_writes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.logical_reads.load(AtomicOrdering::Relaxed),
            self.physical_reads.load(AtomicOrdering::Relaxed),
            self.physical_writes.load(AtomicOrdering::Relaxed),
        )
    }

    /// Snapshot of every counter as plain values.
    pub fn full(&self) -> PagerSnapshot {
        PagerSnapshot {
            logical_reads: self.logical_reads.load(AtomicOrdering::Relaxed),
            physical_reads: self.physical_reads.load(AtomicOrdering::Relaxed),
            physical_writes: self.physical_writes.load(AtomicOrdering::Relaxed),
            evictions: self.evictions.load(AtomicOrdering::Relaxed),
            read_retries: self.read_retries.load(AtomicOrdering::Relaxed),
        }
    }
}

/// Health of a pager (and of the store built on it): either fully serving,
/// or degraded read-only after a persistent storage failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// Reads and writes both served.
    Healthy,
    /// A persistent write-path failure (crashed injector, `ENOSPC`) was
    /// observed: reads keep serving the last committed state, writes are
    /// refused with [`DbError::Degraded`] until a successful
    /// [`Pager::try_restore`]. Carries the reason for the transition.
    Degraded(String),
}

impl StoreHealth {
    /// `true` in the degraded (read-only) state.
    pub fn is_degraded(&self) -> bool {
        matches!(self, StoreHealth::Degraded(_))
    }
}

struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
}

/// Pre-image entry kept for snapshot readers: `Some(page)` is the image a
/// page held at the snapshot's epoch, `None` marks a page that did not yet
/// exist (allocated later — snapshot reads of it are out-of-range).
type PreImage = Option<Arc<Page>>;

struct FileBackend {
    file: File,
    frames: Vec<Frame>,
    /// frame index per cached page; `usize::MAX` = not cached.
    map: HashMap<PageId, usize>,
    capacity: usize,
    hand: usize,
    /// FNV-1a checksum of the last image written to (or validated from) the
    /// file, per page. Misses validate against this on re-read; a mismatch
    /// is treated like a transient read fault and retried.
    sums: HashMap<PageId, u64>,
    /// Commit counter: bumped once per committed transaction (and per
    /// auto-commit mutation while snapshot readers exist). A [`PageView`]
    /// taken at epoch `V` reads pages as of commit `V`.
    epoch: u64,
    /// Mirror of the open transaction's first-touch pre-images, maintained
    /// under the pool mutex so snapshot reads never see uncommitted frame
    /// content. Moved into `retained` at commit, cleared on rollback.
    txn_pre: HashMap<PageId, PreImage>,
    /// Per-commit pre-image deltas kept alive for registered readers.
    /// The delta at key `k` holds the images pages had *through* epoch `k`
    /// (it was retained by the commit that moved the backend to `k + 1`).
    /// A reader at epoch `V` resolves page `P` from the first delta at
    /// `k >= V` that contains `P`; if none does and the open transaction
    /// has not touched `P`, the current frame is unchanged since `V`.
    retained: BTreeMap<u64, HashMap<PageId, PreImage>>,
    /// Registered snapshot readers per epoch ([`PageView`] handles).
    /// Deltas older than the oldest registered epoch are pruned, so a slow
    /// reader pins at most the versions back to its own snapshot.
    readers: BTreeMap<u64, usize>,
}

impl FileBackend {
    /// Drops retained deltas no live reader can need: a delta at key `k`
    /// serves readers at epochs `<= k`, so everything below the oldest
    /// registered epoch goes (all of it, when no reader is registered).
    fn prune_retained(&mut self) {
        match self.readers.keys().next().copied() {
            Some(min) => self.retained.retain(|k, _| *k >= min),
            None => self.retained.clear(),
        }
    }

    /// Records the pre-image chain entry for one auto-commit mutation
    /// (`pre = None` for an allocation) and advances the epoch, so
    /// registered readers keep resolving their version. A no-op while no
    /// reader is registered — the epoch only needs to move when someone
    /// can observe it.
    fn retain_autocommit(&mut self, id: PageId, pre: PreImage) {
        if self.readers.is_empty() {
            return;
        }
        self.retained.entry(self.epoch).or_default().insert(id, pre);
        self.epoch += 1;
    }
}

/// 64-bit FNV-1a over a page image (file-read validation).
fn page_sum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Attempts per physical page read before the error surfaces (first try
/// plus bounded retries with exponential backoff).
const READ_ATTEMPTS: u32 = 3;

/// Ways in the per-thread snapshot cache (direct-mapped by pager id).
const SNAP_WAYS: usize = 4;

/// One published page map: the unit the in-memory backend publishes
/// atomically. Pages are individually `Arc`ed so a writer can copy-on-write
/// only the pages it touches.
type PageMap = Vec<Arc<Page>>;

/// One snapshot-cache way: `(pager id, epoch, snapshot)`.
type SnapEntry = (u64, u64, Arc<PageMap>);

thread_local! {
    /// Per-thread cache of validated `(pager id, epoch, snapshot)` triples,
    /// direct-mapped by pager id. A reader whose cached epoch still matches
    /// the pager's published epoch serves pages with two shared atomic
    /// *loads* and zero shared read-modify-writes — nothing for other
    /// readers to contend on.
    static SNAP_CACHE: std::cell::RefCell<[Option<SnapEntry>; SNAP_WAYS]> =
        const { std::cell::RefCell::new([None, None, None, None]) };
}

/// A process-unique token for the calling thread (never 0, which the
/// writer slot uses for "none"). `ThreadId` has no stable integer form, so
/// the pager numbers threads itself.
fn thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, AtomicOrdering::Relaxed);
    }
    // During thread teardown TLS may be gone; u64::MAX is never allocated
    // as a token, so such a thread simply never matches the writer slot.
    TOKEN.try_with(|t| *t).unwrap_or(u64::MAX)
}

/// The in-memory backend: an epoch-published immutable page map.
///
/// Readers never lock the map. [`MemBackend::with_map`] validates the
/// calling thread's cached snapshot against the published epoch (one
/// `Acquire` load) and only touches the [`latch::EpochCell`]'s slot lock on
/// a mismatch — i.e. once per commit per thread, not once per read.
///
/// Writers mutate `working` (copy-on-write per page via [`Arc::make_mut`])
/// and *publish* a clone of it: at commit/rollback when a transaction is
/// open, or immediately after each mutation otherwise. A writer that
/// panics mid-transaction therefore never publishes — the previously
/// published epoch stays readable, and the still-open transaction keeps
/// new writers out until it is rolled back (which restores pre-images and
/// publishes the restored map, from any thread).
struct MemBackend {
    /// Unique id keying the per-thread snapshot cache.
    id: u64,
    /// The writer's working map; always equal to the published map between
    /// publications. Only mutating entry points lock it.
    working: RwLock<PageMap>,
    /// The last published (committed) page map.
    published: latch::EpochCell<PageMap>,
    /// Thread token of the thread that opened the current transaction
    /// (0 = none). That thread's reads route to `working` so it observes
    /// its own uncommitted writes; every other thread reads the published
    /// snapshot.
    writer: AtomicU64,
}

impl MemBackend {
    fn new() -> MemBackend {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        MemBackend {
            id: NEXT_ID.fetch_add(1, AtomicOrdering::Relaxed),
            working: RwLock::new(Vec::new()),
            published: latch::EpochCell::new(Arc::new(Vec::new())),
            writer: AtomicU64::new(0),
        }
    }

    /// Runs `f` against the current published snapshot, through the
    /// calling thread's cache. Lock-free once the cache is warm: two
    /// shared atomic loads (writer slot, epoch) and a TLS lookup.
    fn with_map<R>(&self, f: impl FnOnce(&PageMap) -> R) -> R {
        let current = self.published.epoch();
        let way = (self.id as usize) % SNAP_WAYS;
        let mut f = Some(f);
        let out = SNAP_CACHE.try_with(|cache| {
            let mut cache = cache.borrow_mut();
            let slot = &mut cache[way];
            let valid = matches!(slot, Some((id, epoch, _)) if *id == self.id && *epoch == current);
            if !valid {
                let (epoch, snap) = self.published.load(WaitSite::Backend);
                *slot = Some((self.id, epoch, snap));
            }
            let (_, _, snap) = slot.as_ref().expect("just validated or refilled");
            (f.take().expect("with_map closure consumed once"))(snap)
        });
        match out {
            Ok(r) => r,
            // TLS is gone during thread teardown; read the slot directly.
            Err(_) => {
                let g = f.take().expect("closure unused when TLS failed");
                g(&self.published.load(WaitSite::Backend).1)
            }
        }
    }

    /// Publishes `map` as the new committed snapshot.
    fn publish(&self, map: PageMap) {
        self.published.publish(Arc::new(map), WaitSite::Backend);
    }
}

/// The two storage backends. The in-memory backend is an epoch-published
/// immutable page map ([`MemBackend`]) — concurrent readers share it with
/// no lock at all. The file backend cannot offer shared reads — even a
/// logically read-only [`Pager::with_page`] pins a frame, which mutates
/// the frame table and may evict — so it sits behind a `Mutex` and reads
/// serialize (contention shows up in the `lock_waits` counter).
enum Backend {
    Mem(MemBackend),
    File(Mutex<FileBackend>),
}

/// A read-only view of the pager as of one committed epoch — the page half
/// of an MVCC snapshot. Cheap to clone (one `Arc`); holding one pins at
/// most the page versions back to its own epoch:
///
/// * **in-memory**: the view holds the published immutable page map of its
///   epoch — reads touch no lock at all, and dropping the view releases
///   the map.
/// * **file**: the view registers its epoch with the buffer pool; commits
///   that overwrite pages it can still see retain per-commit pre-image
///   deltas, which are pruned as soon as no registered reader needs them.
///   Reads serialize on the pool mutex like every file read.
///
/// A view takes effect through [`PageView::install`]: while the returned
/// guard lives, every [`Pager::with_page`] on the calling thread against
/// this view's pager serves from the view instead of the live state.
#[derive(Clone)]
pub struct PageView {
    inner: Arc<ViewInner>,
}

struct ViewInner {
    pager: Arc<Pager>,
    core: ViewCore,
}

enum ViewCore {
    /// The epoch-published immutable map itself — self-contained.
    Mem(Arc<PageMap>),
    /// A registered reader epoch on the file backend's version chain.
    File { epoch: u64 },
}

impl Drop for ViewInner {
    fn drop(&mut self) {
        if let ViewCore::File { epoch } = self.core {
            if let Backend::File(fbm) = &self.pager.backend {
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                if let Some(n) = fb.readers.get_mut(&epoch) {
                    *n -= 1;
                    if *n == 0 {
                        fb.readers.remove(&epoch);
                    }
                }
                fb.prune_retained();
            }
        }
    }
}

thread_local! {
    /// Stack of installed `(pager uid, view)` overrides for this thread.
    /// [`Pager::with_page`] consults the top-most entry for its pager
    /// before touching live state, so snapshot reads compose (a snapshot
    /// executing on the writer thread still sees the snapshot, not the
    /// writer's uncommitted pages).
    static VIEW_STACK: std::cell::RefCell<Vec<(u64, PageView)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII guard from [`PageView::install`]: pops the thread-local override
/// when dropped.
pub struct ViewGuard {
    installed: bool,
}

impl Drop for ViewGuard {
    fn drop(&mut self) {
        if self.installed {
            let _ = VIEW_STACK.try_with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

impl PageView {
    /// Routes this thread's reads of the view's pager through the view
    /// until the returned guard drops. Guards nest (innermost wins).
    pub fn install(&self) -> ViewGuard {
        let installed = VIEW_STACK
            .try_with(|s| {
                s.borrow_mut().push((self.inner.pager.uid, self.clone()));
            })
            .is_ok();
        ViewGuard { installed }
    }

    /// The committed epoch this view reads at (file backend; the in-memory
    /// backend's map is self-describing). Diagnostic only.
    pub fn epoch(&self) -> u64 {
        match &self.inner.core {
            ViewCore::Mem(_) => self.inner.pager.mem_epoch(),
            ViewCore::File { epoch } => *epoch,
        }
    }

    /// Serves one page read as of this view's epoch.
    fn read_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> DbResult<R> {
        let pager = &self.inner.pager;
        match &self.inner.core {
            ViewCore::Mem(map) => match map.get(id as usize) {
                Some(page) => Ok(f(page)),
                None => Err(DbError::Storage(format!("page {id} out of range"))),
            },
            ViewCore::File { epoch } => {
                let Backend::File(fbm) = &pager.backend else {
                    unreachable!("file view on a non-file pager");
                };
                let wal_mode = pager.wal_enabled();
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                // Resolve the version chain: the first retained delta at or
                // after our epoch that mentions the page holds its image as
                // of our snapshot; failing that, the open transaction's
                // pre-images shield us from uncommitted frame content;
                // failing that, the page is unchanged since our epoch and
                // the live frame is correct.
                let pre = fb
                    .retained
                    .range(*epoch..)
                    .find_map(|(_, delta)| delta.get(&id).cloned())
                    .or_else(|| fb.txn_pre.get(&id).cloned());
                match pre {
                    Some(Some(img)) => Ok(f(&img)),
                    Some(None) => Err(DbError::Storage(format!("page {id} out of range"))),
                    None => {
                        let no_steal = wal_mode || !fb.txn_pre.is_empty();
                        let idx = Pager::pin(fb, id, &pager.stats, no_steal, &pager.faults, None)?;
                        Ok(f(&fb.frames[idx].page))
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for PageView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner.core {
            ViewCore::Mem(_) => "mem",
            ViewCore::File { .. } => "file",
        };
        f.debug_struct("PageView")
            .field("backend", &kind)
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// Per-transaction pager state: pre-images for rollback.
struct TxnState {
    /// Monotonic id stamped into WAL frames.
    id: u64,
    /// First-touch pre-image per modified page; `None` marks a page
    /// allocated inside this transaction (rollback drops it). `Arc`ed so
    /// the file backend's snapshot mirror shares the same image.
    pre_images: HashMap<PageId, PreImage>,
    /// Page count at `begin_txn` (rollback target).
    start_pages: u32,
}

/// The pager. Interior-mutable so that read paths (query executors) can
/// share it immutably — and, since every interior-mutable field sits behind
/// a latch or an atomic, `Pager` is `Send + Sync`: any number of threads
/// may run [`Pager::with_page`] concurrently. Mutating entry points
/// (transactions, allocation, `with_page_mut`) are latched too, but callers
/// are expected to serialize writers at a higher level (the engine runs one
/// writer at a time; see `XmlStore` in the core crate).
///
/// Lock order, for paths that hold more than one latch: `txn` → `backend`
/// (the in-memory working map or the file frame table, then the published
/// snapshot slot) → `wal`. `n_pages` and `txn_seq` are atomics and
/// participate in no ordering. The in-memory *read* path takes none of
/// these — it runs against the epoch-published snapshot.
pub struct Pager {
    /// Process-unique id keying thread-local [`PageView`] overrides.
    uid: u64,
    backend: Backend,
    n_pages: AtomicU32,
    stats: Arc<PagerStats>,
    faults: Arc<FaultInjector>,
    wal: Mutex<Option<Wal>>,
    txn: Mutex<Option<TxnState>>,
    txn_seq: AtomicU64,
    /// `Some(reason)` while degraded read-only (see [`StoreHealth`]).
    /// Checked only on the write path (`begin_txn`) — readers never touch
    /// it.
    health: Mutex<Option<String>>,
    /// Optional operator-facing identity (`"shard-3"`). Once multiple
    /// stores share a process (a document pool), a bare degraded-mode
    /// error no longer says *which* store to `try_restore()`; the
    /// identity is prepended to every degraded reason so the error names
    /// its shard. Leaf lock: never held while another pager latch is
    /// taken.
    identity: Mutex<Option<String>>,
}

/// Process-unique pager ids (see [`Pager::uid`]).
fn next_pager_uid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, AtomicOrdering::Relaxed)
}

impl Pager {
    /// A pager whose pages live entirely in memory.
    pub fn in_memory() -> Self {
        Pager {
            uid: next_pager_uid(),
            backend: Backend::Mem(MemBackend::new()),
            n_pages: AtomicU32::new(0),
            stats: Arc::new(PagerStats::default()),
            faults: Arc::new(FaultInjector::new()),
            wal: Mutex::new(None),
            txn: Mutex::new(None),
            txn_seq: AtomicU64::new(0),
            health: Mutex::new(None),
            identity: Mutex::new(None),
        }
    }

    /// A file-backed pager with a buffer pool of `cache_pages` frames.
    /// Existing files are opened (their page count is derived from the file
    /// length); missing files are created.
    pub fn open_file(path: &Path, cache_pages: usize) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Storage(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        let n_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(Pager {
            uid: next_pager_uid(),
            backend: Backend::File(Mutex::new(FileBackend {
                file,
                frames: Vec::new(),
                map: HashMap::new(),
                capacity: cache_pages.max(8),
                hand: 0,
                sums: HashMap::new(),
                epoch: 0,
                txn_pre: HashMap::new(),
                retained: BTreeMap::new(),
                readers: BTreeMap::new(),
            })),
            n_pages: AtomicU32::new(n_pages),
            stats: Arc::new(PagerStats::default()),
            faults: Arc::new(FaultInjector::new()),
            wal: Mutex::new(None),
            txn: Mutex::new(None),
            txn_seq: AtomicU64::new(0),
            health: Mutex::new(None),
            identity: Mutex::new(None),
        })
    }

    /// Attaches a write-ahead log: from now on the pager runs no-steal and
    /// commits route page images through the WAL.
    pub fn attach_wal(&self, wal: Wal) {
        *latch::lock(&self.wal, WaitSite::Wal) = Some(wal);
    }

    /// `true` once a WAL is attached.
    pub fn wal_enabled(&self) -> bool {
        latch::lock(&self.wal, WaitSite::Wal).is_some()
    }

    /// Frames currently sitting in the WAL (0 without a WAL).
    pub fn wal_frames_in_log(&self) -> u64 {
        latch::lock(&self.wal, WaitSite::Wal)
            .as_ref()
            .map_or(0, Wal::frames_in_log)
    }

    /// The shared fault-injection handle for this pager's file I/O.
    pub fn faults(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.faults)
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> Arc<PagerStats> {
        Arc::clone(&self.stats)
    }

    /// The in-memory backend's published epoch (0 for file pagers;
    /// diagnostic only).
    fn mem_epoch(&self) -> u64 {
        match &self.backend {
            Backend::Mem(mem) => mem.published.epoch(),
            Backend::File(_) => 0,
        }
    }

    /// Captures a read-only [`PageView`] of the last committed state.
    /// Cheap: one published-map load (in-memory) or one reader-epoch
    /// registration under the pool mutex (file). Associated function
    /// because the view keeps its pager alive.
    pub fn view(pager: &Arc<Pager>) -> PageView {
        let core = match &pager.backend {
            Backend::Mem(mem) => ViewCore::Mem(mem.published.load(WaitSite::Backend).1),
            Backend::File(fbm) => {
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                *fb.readers.entry(fb.epoch).or_insert(0) += 1;
                ViewCore::File { epoch: fb.epoch }
            }
        };
        PageView {
            inner: Arc::new(ViewInner {
                pager: Arc::clone(pager),
                core,
            }),
        }
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.n_pages.load(AtomicOrdering::Acquire)
    }

    /// `true` while a transaction started by [`Pager::begin_txn`] is open.
    pub fn in_txn(&self) -> bool {
        latch::lock(&self.txn, WaitSite::Txn).is_some()
    }

    /// `true` if the open transaction has modified (or allocated) any page.
    pub fn txn_has_writes(&self) -> bool {
        latch::lock(&self.txn, WaitSite::Txn)
            .as_ref()
            .is_some_and(|t| !t.pre_images.is_empty())
    }

    /// Sets the operator-facing identity included in degraded-mode errors
    /// (a document pool labels each shard's pager `"shard-<n>"`).
    pub fn set_identity(&self, label: &str) {
        *latch::lock(&self.identity, WaitSite::Txn) = Some(label.to_string());
    }

    /// The operator-facing identity, if one was set.
    pub fn identity(&self) -> Option<String> {
        latch::lock(&self.identity, WaitSite::Txn).clone()
    }

    /// Prefixes `reason` with this pager's identity (when set), so degraded
    /// errors surfaced through a shared store name the failing shard.
    fn tag_reason(&self, reason: &str) -> String {
        match &*latch::lock(&self.identity, WaitSite::Txn) {
            Some(id) => format!("[{id}] {reason}"),
            None => reason.to_string(),
        }
    }

    /// Current health. Degradation is entered only by *persistent*
    /// write-path failures (crashed injector or `ENOSPC`) at the WAL commit
    /// barrier or during a checkpoint; transient faults roll back without
    /// degrading.
    pub fn health(&self) -> StoreHealth {
        let reason = latch::lock(&self.health, WaitSite::Txn).clone();
        match reason {
            Some(reason) => StoreHealth::Degraded(self.tag_reason(&reason)),
            None => StoreHealth::Healthy,
        }
    }

    /// Transitions to degraded read-only (idempotent; counted once).
    fn enter_degraded(&self, reason: String) {
        let mut health = latch::lock(&self.health, WaitSite::Txn);
        if health.is_none() {
            *health = Some(reason);
            crate::obs::registry().record_degraded_entry();
        }
    }

    /// Classifies a write-path `io::Error`: persistent failures (crashed
    /// injector, full disk) degrade the store; every failure is returned as
    /// the original storage error so the caller's rollback contract is
    /// unchanged.
    fn classify_write_failure(&self, at: &str, e: std::io::Error) -> DbError {
        if self.faults.is_crashed() || fault::is_enospc(&e) {
            self.enter_degraded(format!("{at}: {e}"));
        }
        e.into()
    }

    /// Attempts to leave degraded mode: re-runs the checkpoint (retrying
    /// dirty home-page writes, fsyncing, truncating the WAL). On success
    /// the pager is healthy again and `begin_txn` accepts writers; on
    /// failure it stays degraded and the error is returned. A no-op when
    /// already healthy.
    pub fn try_restore(&self) -> DbResult<()> {
        if !self.health().is_degraded() {
            return Ok(());
        }
        self.checkpoint_wal()?;
        *latch::lock(&self.health, WaitSite::Txn) = None;
        Ok(())
    }

    /// Starts a transaction; returns its id. Errors if one is already open
    /// (the engine does not nest transactions), or with
    /// [`DbError::Degraded`] while the store is degraded read-only
    /// (rollback of an already-open transaction stays allowed).
    pub fn begin_txn(&self) -> DbResult<u64> {
        if let Some(reason) = latch::lock(&self.health, WaitSite::Txn).clone() {
            crate::obs::registry().record_degraded_reject();
            return Err(DbError::Degraded(self.tag_reason(&reason)));
        }
        let mut txn = latch::lock(&self.txn, WaitSite::Txn);
        if txn.is_some() {
            return Err(DbError::Txn("transaction already active".into()));
        }
        let id = self.txn_seq.fetch_add(1, AtomicOrdering::Relaxed) + 1;
        *txn = Some(TxnState {
            id,
            pre_images: HashMap::new(),
            start_pages: self.page_count(),
        });
        if let Backend::Mem(mem) = &self.backend {
            // Route this thread's reads to the working map for the
            // transaction's lifetime so it observes its own writes.
            mem.writer.store(thread_token(), AtomicOrdering::Release);
        }
        Ok(id)
    }

    /// Commits the open transaction. With a WAL: appends every dirty page as
    /// a frame (last one flagged COMMIT, carrying the page count), fsyncs
    /// the WAL — the durability barrier — then writes the pages home.
    /// Database-file write failures *after* the barrier do not fail the
    /// commit; the pages stay dirty and the WAL protects them until the
    /// next checkpoint retries. Returns the number of WAL frames written.
    ///
    /// On error the transaction is still open; the caller must roll back.
    pub fn commit_txn(&self) -> DbResult<u64> {
        let _span = trace::span("pager.commit");
        let mut txn = latch::lock(&self.txn, WaitSite::Txn);
        let txn_id = txn
            .as_ref()
            .ok_or_else(|| DbError::Txn("no active transaction".into()))?
            .id;
        let mut frames_written = 0u64;
        if let Backend::File(fbm) = &self.backend {
            let fb = &mut *latch::lock(fbm, WaitSite::Backend);
            let mut dirty: Vec<usize> = (0..fb.frames.len())
                .filter(|&i| fb.frames[i].dirty)
                .collect();
            dirty.sort_by_key(|&i| fb.frames[i].id);
            if !dirty.is_empty() {
                let db_size = self.page_count();
                let mut wal = latch::lock(&self.wal, WaitSite::Wal);
                if let Some(wal) = wal.as_mut() {
                    let pages: Vec<(PageId, &Page)> = dirty
                        .iter()
                        .map(|&i| (fb.frames[i].id, &fb.frames[i].page))
                        .collect();
                    frames_written = wal
                        .commit(txn_id, &pages, db_size, &self.faults)
                        .map_err(|e| self.classify_write_failure("wal commit", e))?;
                    crate::obs::registry().record_wal_frames(frames_written);
                }
                // Write the pages home. Past the WAL barrier these are
                // best-effort: a failed write leaves the frame dirty for
                // the checkpoint to retry. Without a WAL the legacy
                // contract applies (durability comes from `flush`), so
                // failures surface to the caller.
                for &i in &dirty {
                    let off = fb.frames[i].id as u64 * PAGE_SIZE as u64;
                    let res = self
                        .faults
                        .write_at(&mut fb.file, off, fb.frames[i].page.bytes());
                    match res {
                        Ok(()) => {
                            let sum = page_sum(fb.frames[i].page.bytes());
                            fb.sums.insert(fb.frames[i].id, sum);
                            fb.frames[i].dirty = false;
                            PagerStats::bump(&self.stats.physical_writes);
                        }
                        Err(e) if wal.is_none() => return Err(e.into()),
                        Err(_) => {}
                    }
                }
            }
            // The commit is durable: move the transaction's pre-images onto
            // the version chain (only if a registered reader can still need
            // them) and advance the epoch, so views taken before this
            // commit keep resolving their versions.
            if !fb.txn_pre.is_empty() {
                let pre = std::mem::take(&mut fb.txn_pre);
                if !fb.readers.is_empty() {
                    fb.retained.entry(fb.epoch).or_default().extend(pre);
                }
                fb.epoch += 1;
                fb.prune_retained();
            }
        }
        if let Backend::Mem(mem) = &self.backend {
            // Publish the working map as the new committed snapshot, then
            // release the writer routing — in that order, so the (single)
            // writer thread never reads a map missing its own commit.
            let map = latch::read(&mem.working, WaitSite::Backend).clone();
            mem.publish(map);
            mem.writer.store(0, AtomicOrdering::Release);
        }
        *txn = None;
        Ok(frames_written)
    }

    /// Rolls the open transaction back: restores every pre-image, drops
    /// pages allocated inside the transaction, and resets the page count.
    /// Returns `true` if the transaction had modified anything (callers use
    /// this to know whether derived in-memory state must be rebuilt).
    pub fn rollback_txn(&self) -> DbResult<bool> {
        let txn = latch::lock(&self.txn, WaitSite::Txn)
            .take()
            .ok_or_else(|| DbError::Txn("no active transaction".into()))?;
        let had_writes = !txn.pre_images.is_empty();
        match &self.backend {
            Backend::Mem(mem) => {
                let restored = {
                    let pages = &mut *latch::write(&mem.working, WaitSite::Backend);
                    for (pid, pre) in txn.pre_images {
                        if let Some(img) = pre {
                            if let Some(slot) = pages.get_mut(pid as usize) {
                                *slot = img;
                            }
                        }
                    }
                    pages.truncate(txn.start_pages as usize);
                    pages.clone()
                };
                // Re-publish the restored map: content-identical to the
                // previous epoch, but readers whose cached epoch lapsed
                // mid-transaction (non-txn publications cannot interleave;
                // this is belt-and-braces) revalidate cleanly, and the
                // working map and published map are equal again.
                mem.publish(restored);
                mem.writer.store(0, AtomicOrdering::Release);
            }
            Backend::File(fbm) => {
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                // The rollback restores the frames to exactly the committed
                // images, so snapshot readers no longer need the shield
                // (and the epoch must *not* advance: nothing committed).
                fb.txn_pre.clear();
                let wal_mode = self.wal_enabled();
                for (pid, pre) in txn.pre_images {
                    match pre {
                        Some(img) => {
                            if let Some(&idx) = fb.map.get(&pid) {
                                fb.frames[idx].page = (*img).clone();
                                // Dirty so any stale on-file copy (legacy
                                // steal, or an earlier commit whose home
                                // write failed) is rewritten later.
                                fb.frames[idx].dirty = true;
                            } else {
                                // Only reachable in legacy mode: eviction
                                // stole the uncommitted page, so rewrite the
                                // pre-image in place.
                                let off = pid as u64 * PAGE_SIZE as u64;
                                self.faults.write_at(&mut fb.file, off, img.bytes())?;
                                fb.sums.insert(pid, page_sum(img.bytes()));
                                PagerStats::bump(&self.stats.physical_writes);
                            }
                        }
                        None => {
                            // Allocated inside the transaction: the page no
                            // longer exists. Turn its cache slot into a dead
                            // frame so the clock reclaims it.
                            if let Some(idx) = fb.map.remove(&pid) {
                                fb.frames[idx] = Frame {
                                    id: DEAD_FRAME,
                                    page: Page::new(),
                                    dirty: false,
                                    referenced: false,
                                };
                            }
                        }
                    }
                }
                if !wal_mode {
                    // Legacy allocation extends the file eagerly; trim the
                    // rolled-back tail (best effort — orphan zero pages are
                    // unreachable anyway).
                    let _ = self
                        .faults
                        .set_len(&fb.file, txn.start_pages as u64 * PAGE_SIZE as u64);
                }
            }
        }
        self.n_pages.store(txn.start_pages, AtomicOrdering::Release);
        if had_writes {
            if let Some(wal) = latch::lock(&self.wal, WaitSite::Wal).as_mut() {
                // Best effort: recovery discards commit-less frames even
                // when the abort record itself cannot be written.
                let _ = wal.abort(txn.id, &self.faults);
            }
        }
        Ok(had_writes)
    }

    /// Fsyncs the database file and truncates the WAL (the checkpoint's I/O
    /// half). Dirty frames left over from failed post-commit writes are
    /// retried first. Refused inside a transaction.
    pub fn checkpoint_wal(&self) -> DbResult<()> {
        let _span = trace::span("pager.checkpoint");
        if self.in_txn() {
            return Err(DbError::Txn("checkpoint inside a transaction".into()));
        }
        if let Backend::File(fbm) = &self.backend {
            let fb = &mut *latch::lock(fbm, WaitSite::Backend);
            for i in 0..fb.frames.len() {
                if !fb.frames[i].dirty {
                    continue;
                }
                let off = fb.frames[i].id as u64 * PAGE_SIZE as u64;
                self.faults
                    .write_at(&mut fb.file, off, fb.frames[i].page.bytes())
                    .map_err(|e| self.classify_write_failure("checkpoint write", e))?;
                let sum = page_sum(fb.frames[i].page.bytes());
                fb.sums.insert(fb.frames[i].id, sum);
                fb.frames[i].dirty = false;
                PagerStats::bump(&self.stats.physical_writes);
            }
            self.faults
                .sync(&fb.file)
                .map_err(|e| self.classify_write_failure("checkpoint fsync", e))?;
            if let Some(wal) = latch::lock(&self.wal, WaitSite::Wal).as_mut() {
                wal.truncate(&self.faults)
                    .map_err(|e| self.classify_write_failure("wal truncate", e))?;
            }
        }
        Ok(())
    }

    /// Allocates a fresh, zeroed page and returns its id. Allocation is a
    /// mutating entry point: the engine serializes it with every other
    /// writer (one writer at a time), so the load/store pair on the page
    /// count never races another allocation.
    pub fn allocate(&self) -> DbResult<PageId> {
        let mut txn = latch::lock(&self.txn, WaitSite::Txn);
        let id = self.page_count();
        match &self.backend {
            Backend::Mem(mem) => {
                let map = {
                    let pages = &mut *latch::write(&mem.working, WaitSite::Backend);
                    pages.push(Arc::new(Page::new()));
                    if txn.is_none() {
                        Some(pages.clone())
                    } else {
                        None
                    }
                };
                // Outside a transaction the allocation publishes
                // immediately — and before the page count advances, so a
                // reader that observes the new count always finds the page
                // in the snapshot it loads.
                if let Some(map) = map {
                    mem.publish(map);
                }
            }
            Backend::File(fbm) => {
                let wal_mode = self.wal_enabled();
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                if wal_mode {
                    // WAL mode: the zero page enters the cache dirty and
                    // reaches the file only through a committed frame.
                    let idx =
                        Self::pin(fb, id, &self.stats, true, &self.faults, Some(Page::new()))?;
                    fb.frames[idx].dirty = true;
                } else {
                    // Legacy: extend the file eagerly so page reads never
                    // run past EOF.
                    let zero = Page::new();
                    self.faults.write_at(
                        &mut fb.file,
                        id as u64 * PAGE_SIZE as u64,
                        zero.bytes(),
                    )?;
                    fb.sums.insert(id, page_sum(zero.bytes()));
                    PagerStats::bump(&self.stats.physical_writes);
                }
                // Snapshot readers must see the page as nonexistent: mark
                // it `None` on the open transaction's mirror, or directly
                // on the version chain for an auto-commit allocation.
                if txn.is_some() {
                    fb.txn_pre.entry(id).or_insert(None);
                } else {
                    fb.retain_autocommit(id, None);
                }
            }
        }
        if let Some(t) = txn.as_mut() {
            t.pre_images.entry(id).or_insert(None);
        }
        self.n_pages.store(id + 1, AtomicOrdering::Release);
        Ok(id)
    }

    /// Runs `f` with shared access to the page. On the in-memory backend
    /// any number of threads run this concurrently *without locking*:
    /// each reads the epoch-published snapshot through its thread-local
    /// cache (see [`MemBackend`]), so the `backend` wait site stays at
    /// zero on the read path. On the file backend reads serialize on the
    /// buffer-pool latch (pinning mutates the frame table).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> DbResult<R> {
        let _span = trace::span("pager.read");
        crate::governance::checkpoint(1)?;
        PagerStats::bump(&self.stats.logical_reads);
        // An installed thread-local view overrides live state — checked
        // before the writer-token routing so a snapshot executing on the
        // writer's own thread still reads the snapshot. The read is served
        // *inside* the shared TLS borrow: no per-read `Arc` clone, so
        // concurrent readers sharing one view have nothing to contend on.
        let mut f = Some(f);
        let overridden = VIEW_STACK.try_with(|stack| {
            let stack = stack.borrow();
            stack
                .iter()
                .rev()
                .find(|(uid, _)| *uid == self.uid)
                .map(|(_, view)| {
                    let g = f.take().expect("with_page closure consumed once");
                    view.read_page(id, g)
                })
        });
        if let Ok(Some(res)) = overridden {
            return res;
        }
        let f = f.take().expect("closure unused without a view override");
        match &self.backend {
            Backend::Mem(mem) => {
                let w = mem.writer.load(AtomicOrdering::Acquire);
                if w != 0 && w == thread_token() {
                    // The transaction's own thread sees its uncommitted
                    // writes from the working map.
                    let pages = latch::read(&mem.working, WaitSite::Backend);
                    return match pages.get(id as usize) {
                        Some(page) => Ok(f(page)),
                        None => Err(DbError::Storage(format!("page {id} out of range"))),
                    };
                }
                mem.with_map(|pages| match pages.get(id as usize) {
                    Some(page) => Ok(f(page)),
                    None => Err(DbError::Storage(format!("page {id} out of range"))),
                })
            }
            Backend::File(fbm) => {
                let no_steal = self.no_steal();
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                let idx = Self::pin(fb, id, &self.stats, no_steal, &self.faults, None)?;
                Ok(f(&fb.frames[idx].page))
            }
        }
    }

    /// Runs `f` with exclusive access to the page, marking it dirty (and
    /// capturing a pre-image when a transaction is open).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> DbResult<R> {
        let _span = trace::span("pager.write");
        PagerStats::bump(&self.stats.logical_reads);
        let mut txn = latch::lock(&self.txn, WaitSite::Txn);
        match &self.backend {
            Backend::Mem(mem) => {
                let mut pages = latch::write(&mem.working, WaitSite::Backend);
                let slot = pages
                    .get_mut(id as usize)
                    .ok_or_else(|| DbError::Storage(format!("page {id} out of range")))?;
                if let Some(t) = txn.as_mut() {
                    // Sharing the slot's Arc (instead of deep-cloning) also
                    // pins its refcount above 1, so `make_mut` below is
                    // guaranteed to copy-on-write.
                    t.pre_images
                        .entry(id)
                        .or_insert_with(|| Some(Arc::clone(slot)));
                }
                // Copy-on-write: if the published snapshot still shares
                // this page, mutate a private copy — readers keep the
                // committed image until the next publication.
                let r = f(Arc::make_mut(slot));
                if txn.is_none() {
                    // No transaction: each mutation publishes immediately
                    // (auto-commit granularity).
                    let map = pages.clone();
                    drop(pages);
                    mem.publish(map);
                }
                Ok(r)
            }
            Backend::File(fbm) => {
                let no_steal = txn.is_some() || self.wal_enabled();
                let fb = &mut *latch::lock(fbm, WaitSite::Backend);
                let idx = Self::pin(fb, id, &self.stats, no_steal, &self.faults, None)?;
                match txn.as_mut() {
                    Some(t) => {
                        // One shared image feeds both rollback (txn state)
                        // and snapshot reads (the backend mirror).
                        if let std::collections::hash_map::Entry::Vacant(e) = t.pre_images.entry(id)
                        {
                            let img = Arc::new(fb.frames[idx].page.clone());
                            e.insert(Some(Arc::clone(&img)));
                            fb.txn_pre.insert(id, Some(img));
                        }
                    }
                    None => {
                        // Auto-commit granularity: the mutation commits by
                        // itself, so registered readers need the old image
                        // on the version chain before it changes.
                        if !fb.readers.is_empty() {
                            let old = Arc::new(fb.frames[idx].page.clone());
                            fb.retain_autocommit(id, Some(old));
                        }
                    }
                }
                fb.frames[idx].dirty = true;
                Ok(f(&mut fb.frames[idx].page))
            }
        }
    }

    /// Dirty pages must stay pinned whenever they are protected by a WAL
    /// (their only durable copy is the uncheckpointed log or an open
    /// transaction's buffer) or by an open transaction's pre-images.
    fn no_steal(&self) -> bool {
        self.wal_enabled() || self.in_txn()
    }

    /// Ensures `id` is cached, evicting with the clock algorithm if the pool
    /// is full; under no-steal the pool grows instead of stealing a dirty
    /// frame. `preloaded` supplies the page image without a file read (used
    /// by WAL-mode allocation). Returns the frame index.
    fn pin(
        fb: &mut FileBackend,
        id: PageId,
        stats: &PagerStats,
        no_steal: bool,
        faults: &FaultInjector,
        preloaded: Option<Page>,
    ) -> DbResult<usize> {
        if let Some(&idx) = fb.map.get(&id) {
            fb.frames[idx].referenced = true;
            return Ok(idx);
        }
        let page = match preloaded {
            Some(p) => p,
            None => {
                PagerStats::bump(&stats.physical_reads);
                Self::read_page_checked(fb, id, stats, faults)?
            }
        };
        if fb.frames.len() < fb.capacity {
            let idx = fb.frames.len();
            fb.frames.push(Frame {
                id,
                page,
                dirty: false,
                referenced: true,
            });
            fb.map.insert(id, idx);
            return Ok(idx);
        }
        // Clock eviction: advance the hand until an unreferenced (and, under
        // no-steal, clean) frame shows. Two full sweeps visit every frame
        // once with its reference bit cleared; if none is evictable, every
        // frame is pinned dirty and the pool grows past capacity (it shrinks
        // back through normal eviction once commits clean the frames).
        let mut victim = None;
        let mut examined = 0;
        let limit = fb.frames.len() * 2;
        while examined < limit {
            let i = fb.hand;
            fb.hand = (fb.hand + 1) % fb.frames.len();
            examined += 1;
            if fb.frames[i].referenced {
                fb.frames[i].referenced = false;
                continue;
            }
            if no_steal && fb.frames[i].dirty {
                continue;
            }
            victim = Some(i);
            break;
        }
        let Some(idx) = victim else {
            let idx = fb.frames.len();
            fb.frames.push(Frame {
                id,
                page,
                dirty: false,
                referenced: true,
            });
            fb.map.insert(id, idx);
            return Ok(idx);
        };
        PagerStats::bump(&stats.evictions);
        let victim = &mut fb.frames[idx];
        if victim.dirty {
            faults.write_at(
                &mut fb.file,
                victim.id as u64 * PAGE_SIZE as u64,
                victim.page.bytes(),
            )?;
            let sum = page_sum(victim.page.bytes());
            let vid = victim.id;
            fb.sums.insert(vid, sum);
            PagerStats::bump(&stats.physical_writes);
        }
        let victim = &mut fb.frames[idx];
        fb.map.remove(&victim.id);
        fb.map.insert(id, idx);
        fb.frames[idx] = Frame {
            id,
            page,
            dirty: false,
            referenced: true,
        };
        Ok(idx)
    }

    /// One physical page read with checksum validation and bounded
    /// retry-with-backoff. A transient injected error or a checksum
    /// mismatch (corrupted image) costs a retry; only after
    /// [`READ_ATTEMPTS`] consecutive failures does the error surface. A
    /// page with no recorded checksum (first read of a recovered or
    /// pre-existing file) records one for later validation.
    fn read_page_checked(
        fb: &mut FileBackend,
        id: PageId,
        stats: &PagerStats,
        faults: &FaultInjector,
    ) -> DbResult<Page> {
        let off = id as u64 * PAGE_SIZE as u64;
        let expected = fb.sums.get(&id).copied();
        let mut last_err = String::new();
        for attempt in 0..READ_ATTEMPTS {
            if attempt > 0 {
                PagerStats::bump(&stats.read_retries);
                crate::obs::registry().record_read_retries(1);
                // Tiny exponential backoff: transient device hiccups clear
                // in microseconds; anything longer is for the error path.
                std::thread::sleep(Duration::from_micros(50 << attempt));
            }
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            match faults.read_at(&mut fb.file, off, &mut buf[..]) {
                Ok(()) => {
                    let sum = page_sum(&buf[..]);
                    match expected {
                        Some(want) if want != sum => {
                            last_err =
                                format!("checksum mismatch (want {want:#018x}, got {sum:#018x})");
                            continue;
                        }
                        Some(_) => {}
                        None => {
                            fb.sums.insert(id, sum);
                        }
                    }
                    return Ok(Page::from_bytes(buf));
                }
                Err(e) => {
                    last_err = e.to_string();
                    continue;
                }
            }
        }
        Err(DbError::Storage(format!(
            "page {id} unreadable after {READ_ATTEMPTS} attempts: {last_err}"
        )))
    }

    /// Writes all dirty frames back to the file and fsyncs it (no-op in
    /// memory mode). In WAL mode this is only safe outside transactions
    /// (dirty frames then hold committed content), which
    /// [`Pager::checkpoint_wal`] enforces.
    pub fn flush(&self) -> DbResult<()> {
        if let Backend::File(fbm) = &self.backend {
            let fb = &mut *latch::lock(fbm, WaitSite::Backend);
            for i in 0..fb.frames.len() {
                if !fb.frames[i].dirty {
                    continue;
                }
                let off = fb.frames[i].id as u64 * PAGE_SIZE as u64;
                self.faults
                    .write_at(&mut fb.file, off, fb.frames[i].page.bytes())?;
                let sum = page_sum(fb.frames[i].page.bytes());
                fb.sums.insert(fb.frames[i].id, sum);
                fb.frames[i].dirty = false;
                PagerStats::bump(&self.stats.physical_writes);
            }
            self.faults.sync(&fb.file)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("pages", &self.page_count())
            .field("wal", &self.wal_enabled())
            .field("in_txn", &self.in_txn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pager>();
    }

    #[test]
    fn concurrent_readers_share_the_memory_backend() {
        let pager = Arc::new(Pager::in_memory());
        for i in 0..8u32 {
            let id = pager.allocate().unwrap();
            pager
                .with_page_mut(id, |p| {
                    p.insert(format!("page-{i}").as_bytes()).unwrap();
                })
                .unwrap();
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pager = Arc::clone(&pager);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        for i in 0..8u32 {
                            let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
                            assert_eq!(got, format!("page-{i}").as_bytes());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_readers_share_the_file_backend() {
        let dir = std::env::temp_dir().join(format!("ordxml-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared-read.db");
        let _ = std::fs::remove_file(&path);
        let pager = Arc::new(Pager::open_file(&path, 8).unwrap());
        for i in 0..32u32 {
            let id = pager.allocate().unwrap();
            pager
                .with_page_mut(id, |p| {
                    p.insert(format!("page-{i}").as_bytes()).unwrap();
                })
                .unwrap();
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pager = Arc::clone(&pager);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        for i in 0..32u32 {
                            let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
                            assert_eq!(got, format!("page-{i}").as_bytes());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(pager);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_pager_basics() {
        let pager = Pager::in_memory();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        pager
            .with_page_mut(a, |p| {
                p.insert(b"hello").unwrap();
            })
            .unwrap();
        let got = pager.with_page(a, |p| p.get(0).unwrap().to_vec()).unwrap();
        assert_eq!(got, b"hello");
        assert!(pager.with_page(99, |_| ()).is_err());
    }

    #[test]
    fn file_pager_round_trips_through_eviction() {
        let dir = std::env::temp_dir().join(format!("ordxml-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evict.db");
        let _ = std::fs::remove_file(&path);
        {
            // Tiny pool: 8 frames, 64 pages -> lots of eviction.
            let pager = Pager::open_file(&path, 8).unwrap();
            for i in 0..64u32 {
                let id = pager.allocate().unwrap();
                pager
                    .with_page_mut(id, |p| {
                        p.insert(format!("page-{i}").as_bytes()).unwrap();
                    })
                    .unwrap();
            }
            for i in 0..64u32 {
                let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
                assert_eq!(got, format!("page-{i}").as_bytes());
            }
            pager.flush().unwrap();
            let (_, phys_reads, phys_writes) = pager.stats().snapshot();
            assert!(phys_reads > 0, "pool smaller than file must re-read");
            assert!(phys_writes >= 64);
        }
        // Reopen and verify durability.
        let pager = Pager::open_file(&path, 8).unwrap();
        assert_eq!(pager.page_count(), 64);
        for i in 0..64u32 {
            let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(got, format!("page-{i}").as_bytes());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_count_logical_reads() {
        let pager = Pager::in_memory();
        let id = pager.allocate().unwrap();
        for _ in 0..5 {
            pager.with_page(id, |_| ()).unwrap();
        }
        let (logical, physical, _) = pager.stats().snapshot();
        assert_eq!(logical, 5);
        assert_eq!(physical, 0);
    }

    #[test]
    fn memory_rollback_restores_pages_and_count() {
        let pager = Pager::in_memory();
        let a = pager.allocate().unwrap();
        pager
            .with_page_mut(a, |p| {
                p.insert(b"committed").unwrap();
            })
            .unwrap();
        pager.begin_txn().unwrap();
        pager
            .with_page_mut(a, |p| {
                p.insert(b"uncommitted").unwrap();
            })
            .unwrap();
        let b = pager.allocate().unwrap();
        pager
            .with_page_mut(b, |p| {
                p.insert(b"new page").unwrap();
            })
            .unwrap();
        assert!(pager.rollback_txn().unwrap());
        assert_eq!(pager.page_count(), 1);
        let live = pager.with_page(a, |p| p.live_count()).unwrap();
        assert_eq!(live, 1, "only the pre-transaction record remains");
        assert!(pager.with_page(b, |_| ()).is_err());
    }

    #[test]
    fn commit_clears_transaction_state() {
        let pager = Pager::in_memory();
        let a = pager.allocate().unwrap();
        pager.begin_txn().unwrap();
        pager
            .with_page_mut(a, |p| {
                p.insert(b"kept").unwrap();
            })
            .unwrap();
        assert!(pager.txn_has_writes());
        pager.commit_txn().unwrap();
        assert!(!pager.in_txn());
        let live = pager.with_page(a, |p| p.live_count()).unwrap();
        assert_eq!(live, 1);
        assert!(pager.begin_txn().is_ok(), "a new transaction can start");
        pager.commit_txn().unwrap();
    }

    #[test]
    fn nested_transactions_are_refused() {
        let pager = Pager::in_memory();
        pager.begin_txn().unwrap();
        assert!(matches!(pager.begin_txn(), Err(DbError::Txn(_))));
        pager.commit_txn().unwrap();
        assert!(matches!(pager.commit_txn(), Err(DbError::Txn(_))));
        assert!(matches!(pager.rollback_txn(), Err(DbError::Txn(_))));
    }

    #[test]
    fn readers_see_pre_or_post_commit_snapshot_never_uncommitted() {
        // Two pages are updated inside one transaction on a writer thread.
        // While the transaction is open (and provably uncommitted — the
        // writer blocks on a channel), other threads must see the old
        // committed epoch on BOTH pages; after commit, the new one.
        let pager = Arc::new(Pager::in_memory());
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        for id in [a, b] {
            pager
                .with_page_mut(id, |p| {
                    p.insert(b"old").unwrap();
                })
                .unwrap();
        }
        let (mutated_tx, mutated_rx) = std::sync::mpsc::channel::<()>();
        let (commit_tx, commit_rx) = std::sync::mpsc::channel::<()>();
        let w = Arc::clone(&pager);
        let writer = std::thread::spawn(move || {
            w.begin_txn().unwrap();
            for id in [a, b] {
                w.with_page_mut(id, |p| {
                    p.insert(b"new").unwrap();
                })
                .unwrap();
            }
            // The writer itself sees its own uncommitted writes...
            assert_eq!(w.with_page(a, |p| p.live_count()).unwrap(), 2);
            mutated_tx.send(()).unwrap();
            commit_rx.recv().unwrap(); // hold the txn open until told
            w.commit_txn().unwrap();
        });
        mutated_rx.recv().unwrap();
        // ...while every other thread still reads the published epoch.
        for id in [a, b] {
            assert_eq!(
                pager.with_page(id, |p| p.live_count()).unwrap(),
                1,
                "uncommitted write leaked to a non-writer thread"
            );
        }
        let r = Arc::clone(&pager);
        std::thread::spawn(move || {
            for id in [a, b] {
                assert_eq!(r.with_page(id, |p| p.live_count()).unwrap(), 1);
            }
        })
        .join()
        .unwrap();
        commit_tx.send(()).unwrap();
        writer.join().unwrap();
        // Post-commit: the new epoch, atomically covering both pages.
        for id in [a, b] {
            assert_eq!(pager.with_page(id, |p| p.live_count()).unwrap(), 2);
        }
    }

    #[test]
    fn writer_panic_mid_txn_leaves_published_epoch_readable() {
        let pager = Arc::new(Pager::in_memory());
        let a = pager.allocate().unwrap();
        pager
            .with_page_mut(a, |p| {
                p.insert(b"committed").unwrap();
            })
            .unwrap();
        // A writer thread opens a transaction, mutates, and dies without
        // committing — simulating a panic mid-commit.
        let w = Arc::clone(&pager);
        let _ = std::thread::spawn(move || {
            w.begin_txn().unwrap();
            w.with_page_mut(a, |p| {
                p.insert(b"uncommitted").unwrap();
            })
            .unwrap();
            panic!("writer dies mid-transaction");
        })
        .join();
        // Readers (this thread and fresh ones) still see the previously
        // published epoch: exactly one committed record.
        assert_eq!(pager.with_page(a, |p| p.live_count()).unwrap(), 1);
        let r = Arc::clone(&pager);
        std::thread::spawn(move || {
            assert_eq!(r.with_page(a, |p| p.live_count()).unwrap(), 1);
        })
        .join()
        .unwrap();
        // The orphaned transaction still guards the pager...
        assert!(matches!(pager.begin_txn(), Err(DbError::Txn(_))));
        // ...until rollback (from this thread — not the dead writer's)
        // restores the pre-image and reopens the write path.
        assert!(pager.rollback_txn().unwrap());
        assert_eq!(pager.with_page(a, |p| p.live_count()).unwrap(), 1);
        pager.begin_txn().unwrap();
        pager.commit_txn().unwrap();
    }

    #[test]
    fn wal_mode_grows_pool_instead_of_stealing() {
        let dir = std::env::temp_dir().join(format!("ordxml-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nosteal.db");
        let wal_p = super::super::wal::wal_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_p);
        let pager = Pager::open_file(&path, 8).unwrap();
        pager.attach_wal(Wal::open(&wal_p).unwrap());
        pager.begin_txn().unwrap();
        // Dirty 3x the pool capacity inside one transaction.
        for i in 0..24u32 {
            let id = pager.allocate().unwrap();
            pager
                .with_page_mut(id, |p| {
                    p.insert(format!("p{i}").as_bytes()).unwrap();
                })
                .unwrap();
        }
        let (_, _, phys_writes) = pager.stats().snapshot();
        assert_eq!(phys_writes, 0, "no-steal: nothing reaches the file yet");
        let frames = pager.commit_txn().unwrap();
        assert_eq!(frames, 24);
        pager.checkpoint_wal().unwrap();
        drop(pager);
        let pager = Pager::open_file(&path, 8).unwrap();
        assert_eq!(pager.page_count(), 24);
        for i in 0..24u32 {
            let got = pager.with_page(i, |p| p.get(0).unwrap().to_vec()).unwrap();
            assert_eq!(got, format!("p{i}").as_bytes());
        }
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&wal_p).unwrap();
    }
}
