//! Heap files: unordered collections of records with stable row ids.
//!
//! A heap file owns a list of pages (allocated from the shared [`Pager`])
//! plus an in-memory free-space map. Records are addressed by [`RowId`]
//! (page, slot). Updates keep the row id stable when the new record fits on
//! its page and relocate (returning a fresh row id) otherwise — the caller
//! (the table layer) is responsible for fixing indexes when relocation
//! happens.

use super::page::{SlotId, PAGE_SIZE};
use super::pager::{PageId, Pager};
use crate::error::{DbError, DbResult};
use std::fmt;

/// Stable address of a record in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page id within the pager.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl RowId {
    /// Packs the row id into a `u64` (used as a B+tree value).
    pub fn pack(self) -> u64 {
        (u64::from(self.page) << 16) | u64::from(self.slot)
    }

    /// Inverse of [`RowId::pack`].
    pub fn unpack(v: u64) -> RowId {
        RowId {
            page: (v >> 16) as PageId,
            slot: (v & 0xFFFF) as SlotId,
        }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// An unordered record file.
#[derive(Debug, Clone, Default)]
pub struct HeapFile {
    /// Pages of this heap, in allocation order.
    pages: Vec<PageId>,
    /// Approximate free bytes per page (same order as `pages`).
    free: Vec<u16>,
    /// Live record count.
    n_rows: u64,
}

impl HeapFile {
    /// An empty heap.
    pub fn new() -> Self {
        HeapFile::default()
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.n_rows
    }

    /// `true` if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of pages owned by the heap.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page ids owned by this heap (for catalog persistence).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Rebuilds heap metadata from a persisted page list (used when a
    /// file-backed database is reopened).
    pub fn from_pages(pages: Vec<PageId>, pager: &Pager) -> DbResult<Self> {
        let mut heap = HeapFile {
            free: Vec::with_capacity(pages.len()),
            pages,
            n_rows: 0,
        };
        for &pid in &heap.pages {
            let (free, live) =
                pager.with_page(pid, |p| (p.usable_free() as u16, p.live_count() as u64))?;
            heap.free.push(free);
            heap.n_rows += live;
        }
        Ok(heap)
    }

    /// Inserts a record, returning its row id.
    pub fn insert(&mut self, pager: &Pager, record: &[u8]) -> DbResult<RowId> {
        if record.len() + 8 > PAGE_SIZE {
            return Err(DbError::Storage(format!(
                "record of {} bytes exceeds the page size",
                record.len()
            )));
        }
        // Fast path: the most recently used page, then first-fit over the
        // free-space map, then a fresh page.
        let candidate = self
            .pages
            .len()
            .checked_sub(1)
            .filter(|&last| self.free[last] as usize >= record.len() + 4)
            .or_else(|| {
                self.free
                    .iter()
                    .position(|&f| f as usize >= record.len() + 4)
            });
        if let Some(idx) = candidate {
            let pid = self.pages[idx];
            let slot = pager.with_page_mut(pid, |p| {
                let slot = p.insert(record);
                (slot, p.usable_free() as u16)
            })?;
            if let (Some(slot), free) = slot {
                self.free[idx] = free;
                self.n_rows += 1;
                return Ok(RowId { page: pid, slot });
            }
            // `fits` was approximate (fragmentation); fall through.
            self.free[idx] = 0;
        }
        let pid = pager.allocate()?;
        self.pages.push(pid);
        let (slot, free) = pager.with_page_mut(pid, |p| {
            let slot = p.insert(record).expect("record fits an empty page");
            (slot, p.usable_free() as u16)
        })?;
        self.free.push(free);
        self.n_rows += 1;
        Ok(RowId { page: pid, slot })
    }

    /// Reads the record at `id`.
    pub fn get(&self, pager: &Pager, id: RowId) -> DbResult<Vec<u8>> {
        pager
            .with_page(id.page, |p| p.get(id.slot).map(<[u8]>::to_vec))?
            .ok_or_else(|| DbError::Storage(format!("no record at {id}")))
    }

    /// Deletes the record at `id`. Returns `true` if it existed.
    pub fn delete(&mut self, pager: &Pager, id: RowId) -> DbResult<bool> {
        let (deleted, free) =
            pager.with_page_mut(id.page, |p| (p.delete(id.slot), p.usable_free() as u16))?;
        if deleted {
            self.n_rows -= 1;
            if let Some(idx) = self.pages.iter().position(|&p| p == id.page) {
                self.free[idx] = free;
            }
        }
        Ok(deleted)
    }

    /// Updates the record at `id`. Returns the (possibly new) row id: when
    /// the record no longer fits on its page it is moved to another page.
    pub fn update(&mut self, pager: &Pager, id: RowId, record: &[u8]) -> DbResult<RowId> {
        let (ok, free) = pager.with_page_mut(id.page, |p| {
            (p.update(id.slot, record), p.usable_free() as u16)
        })?;
        if ok {
            if let Some(idx) = self.pages.iter().position(|&p| p == id.page) {
                self.free[idx] = free;
            }
            return Ok(id);
        }
        // Relocate.
        if !self.delete(pager, id)? {
            return Err(DbError::Storage(format!("no record at {id}")));
        }
        self.insert(pager, record)
    }

    /// The live records of the `idx`-th page, with their row ids. Executors
    /// stream a heap one page at a time through this.
    pub fn page_rows(&self, pager: &Pager, idx: usize) -> DbResult<Vec<(RowId, Vec<u8>)>> {
        let pid = self.pages[idx];
        pager.with_page(pid, |p| {
            p.iter()
                .map(|(slot, rec)| (RowId { page: pid, slot }, rec.to_vec()))
                .collect()
        })
    }

    /// Collects every `(RowId, record)` in the heap (test/diagnostic helper).
    pub fn scan_all(&self, pager: &Pager) -> DbResult<Vec<(RowId, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.n_rows as usize);
        for idx in 0..self.pages.len() {
            out.extend(self.page_rows(pager, idx)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete_across_pages() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        let rec = vec![7u8; 1000];
        let ids: Vec<RowId> = (0..50)
            .map(|_| heap.insert(&pager, &rec).unwrap())
            .collect();
        assert_eq!(heap.len(), 50);
        assert!(heap.page_count() >= 7, "1000B records, ~8 per page");
        for &id in &ids {
            assert_eq!(heap.get(&pager, id).unwrap(), rec);
        }
        assert!(heap.delete(&pager, ids[0]).unwrap());
        assert!(!heap.delete(&pager, ids[0]).unwrap());
        assert!(heap.get(&pager, ids[0]).is_err());
        assert_eq!(heap.len(), 49);
    }

    #[test]
    fn freed_space_is_reused() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        let rec = vec![1u8; 2000];
        let ids: Vec<RowId> = (0..20)
            .map(|_| heap.insert(&pager, &rec).unwrap())
            .collect();
        let pages_before = heap.page_count();
        for id in ids {
            heap.delete(&pager, id).unwrap();
        }
        for _ in 0..20 {
            heap.insert(&pager, &rec).unwrap();
        }
        assert_eq!(heap.page_count(), pages_before, "space should be reused");
    }

    #[test]
    fn update_in_place_keeps_rowid() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        let id = heap.insert(&pager, &[1u8; 100]).unwrap();
        let id2 = heap.update(&pager, id, &[2u8; 80]).unwrap();
        assert_eq!(id, id2);
        assert_eq!(heap.get(&pager, id).unwrap(), vec![2u8; 80]);
    }

    #[test]
    fn update_relocates_when_page_full() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        let id = heap.insert(&pager, &[1u8; 100]).unwrap();
        // Fill the first page solid.
        while heap.page_count() == 1 {
            heap.insert(&pager, &[3u8; 500]).unwrap();
        }
        let grown = vec![2u8; 4000];
        let id2 = heap.update(&pager, id, &grown).unwrap();
        assert_ne!(id.page, id2.page, "record should relocate");
        assert_eq!(heap.get(&pager, id2).unwrap(), grown);
        assert!(heap.get(&pager, id).is_err());
    }

    #[test]
    fn scan_sees_every_live_record() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        let mut expect = Vec::new();
        for i in 0..200u32 {
            let rec = i.to_le_bytes().to_vec();
            let id = heap.insert(&pager, &rec).unwrap();
            expect.push((id, rec));
        }
        // Delete a third of them.
        for (id, _) in expect.iter().step_by(3) {
            heap.delete(&pager, *id).unwrap();
        }
        let live: Vec<(RowId, Vec<u8>)> = expect
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, e)| e.clone())
            .collect();
        let mut scanned = heap.scan_all(&pager).unwrap();
        scanned.sort();
        let mut live_sorted = live.clone();
        live_sorted.sort();
        assert_eq!(scanned, live_sorted);
    }

    #[test]
    fn from_pages_rebuilds_metadata() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        for i in 0..100u32 {
            heap.insert(&pager, &i.to_le_bytes()).unwrap();
        }
        let rebuilt = HeapFile::from_pages(heap.pages().to_vec(), &pager).unwrap();
        assert_eq!(rebuilt.len(), 100);
        assert_eq!(rebuilt.page_count(), heap.page_count());
    }

    #[test]
    fn oversized_record_rejected() {
        let pager = Pager::in_memory();
        let mut heap = HeapFile::new();
        assert!(heap.insert(&pager, &vec![0u8; PAGE_SIZE]).is_err());
    }
}
