//! Physical storage: slotted pages, the pager/buffer pool, heap files, the
//! write-ahead log, and the fault-injection shim underneath them.

pub mod fault;
pub mod heap;
pub mod page;
pub mod pager;
pub mod wal;

pub use fault::{is_enospc, is_injected, FaultInjector};
pub use heap::{HeapFile, RowId};
pub use page::{Page, SlotId, PAGE_SIZE};
pub use pager::{PageId, PageView, Pager, PagerStats, ViewGuard};
pub use wal::{wal_path, RecoveryReport, Wal};
