//! Physical storage: slotted pages, the pager/buffer pool, and heap files.

pub mod heap;
pub mod page;
pub mod pager;

pub use heap::{HeapFile, RowId};
pub use page::{Page, SlotId, PAGE_SIZE};
pub use pager::{PageId, Pager, PagerStats};
