//! Error type shared across the engine.

use std::fmt;

/// Any error the database engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to lex/parse. Carries a byte offset and message.
    Parse {
        /// Byte offset of the error in the SQL text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A name (table, column, index) could not be resolved.
    Unknown(String),
    /// The statement is well-formed but violates the schema (type mismatch,
    /// arity mismatch, duplicate names, ...).
    Schema(String),
    /// A uniqueness constraint (primary key / unique index) was violated.
    Constraint(String),
    /// A runtime evaluation error (bad cast, division by zero, ...).
    Eval(String),
    /// The underlying storage failed (I/O).
    Storage(String),
    /// Transaction misuse (nested begin, commit/rollback with no open
    /// transaction, checkpoint inside a transaction).
    Txn(String),
    /// The feature is recognized but intentionally unsupported.
    Unsupported(String),
    /// The statement exceeded its deadline and was stopped at a governance
    /// checkpoint. The store is untouched: read snapshots stay published and
    /// no latch is poisoned.
    Timeout(String),
    /// The statement was cooperatively canceled via its cancel flag.
    Canceled(String),
    /// The statement exceeded a resource budget (rows examined, pages read).
    ResourceExhausted(String),
    /// The store is in degraded read-only mode after a persistent storage
    /// failure; writes are refused until `try_restore` succeeds. Reads keep
    /// serving the last committed snapshot.
    Degraded(String),
}

impl DbError {
    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        DbError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            DbError::Unknown(what) => write!(f, "unknown {what}"),
            DbError::Schema(msg) => write!(f, "schema error: {msg}"),
            DbError::Constraint(msg) => write!(f, "constraint violation: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::Storage(msg) => write!(f, "storage error: {msg}"),
            DbError::Txn(msg) => write!(f, "transaction error: {msg}"),
            DbError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            DbError::Timeout(msg) => write!(f, "query deadline exceeded: {msg}"),
            DbError::Canceled(msg) => write!(f, "query canceled: {msg}"),
            DbError::ResourceExhausted(msg) => write!(f, "resource budget exhausted: {msg}"),
            DbError::Degraded(msg) => write!(f, "store degraded (read-only): {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Storage(e.to_string())
    }
}

/// Crate-wide result alias.
pub type DbResult<T> = Result<T, DbError>;
