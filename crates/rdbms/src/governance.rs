//! Query governance: deadlines, cooperative cancellation, and row budgets.
//!
//! A statement runs under at most one [`Scope`] per thread. The scope
//! installs a guard (deadline instant, shared cancel flag, work budget) in
//! thread-local storage; hot loops across the engine — operator row loops in
//! `exec`, B+tree descents, pager page reads — call [`checkpoint`] (fallible
//! sites) or [`note_work`] (infallible iterators) to charge work units
//! against it.
//!
//! The design goals, in order:
//!
//! 1. **Zero cost when ungoverned.** With no scope installed, `checkpoint`
//!    is one thread-local flag load. No locks, no shared atomics — the
//!    lock-free read path's zero-wait invariant (see
//!    `scaling_gate_lock_free_read_path`) is preserved with governance
//!    compiled in and even with it armed, because the guard lives entirely
//!    in TLS.
//! 2. **Cheap when governed.** Work units accumulate in a plain counter;
//!    the expensive checks (clock read for the deadline, atomic load of the
//!    cancel flag) run once every [`CHECK_PERIOD`] units. Budget compares
//!    are two integers and run on every charge.
//! 3. **Typed, never a panic.** A tripped guard surfaces as
//!    [`DbError::Timeout`] / [`DbError::Canceled`] /
//!    [`DbError::ResourceExhausted`] out of the next fallible checkpoint;
//!    infallible sites (B+tree iterators yield plain tuples) latch the
//!    violation so it is raised at the next fallible site up-stack. The
//!    error unwinds through ordinary `?` propagation, so transactions roll
//!    back and latches release exactly as for any other statement error.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{DbError, DbResult};

/// Work units charged between deadline/cancel checks. Row-at-a-time loops
/// charge 1 per row, so this bounds the detection latency to ~256 rows of
/// work (a few microseconds) while keeping clock reads off the per-row path.
pub const CHECK_PERIOD: u64 = 256;

/// Governance limits for one statement (or one whole `xpath()` call).
/// `None` everywhere means ungoverned; [`Scope::enter`] then installs
/// nothing and the hot path stays at its one-flag-load fast path.
#[derive(Debug, Clone, Default)]
pub struct Limits {
    /// Absolute deadline; work past this instant trips [`DbError::Timeout`].
    pub deadline: Option<Instant>,
    /// Shared cancel flag; setting it from any thread trips
    /// [`DbError::Canceled`] at the statement's next periodic check.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Budget of work units (≈ rows visited + pages read); exceeding it
    /// trips [`DbError::ResourceExhausted`].
    pub work_budget: Option<u64>,
}

impl Limits {
    /// `true` when no limit is set — [`Scope::enter`] skips installation.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.work_budget.is_none()
    }
}

struct GuardState {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    work_budget: Option<u64>,
    /// Total work charged under this scope.
    work: u64,
    /// Work since the last periodic (clock/cancel) check.
    since_check: u64,
    /// A violation observed at an infallible site (or a previous
    /// checkpoint), replayed by every later checkpoint.
    tripped: Option<DbError>,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static GUARD: RefCell<Option<GuardState>> = const { RefCell::new(None) };
}

/// An installed governance guard. Created by [`Scope::enter`]; dropping it
/// uninstalls the guard. If a scope is already active on this thread (an
/// `xpath()` call issuing many statements installs one for the whole call),
/// entering again is a no-op and the outer scope keeps governing — so a
/// whole-query deadline cannot be reset by the statements it spawns.
pub struct Scope {
    installed: bool,
    // TLS-backed: neither Send nor Sync.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Scope {
    /// Installs `limits` as this thread's governor (see type docs).
    pub fn enter(limits: Limits) -> Scope {
        if limits.is_unlimited() || ACTIVE.with(|a| a.get()) {
            return Scope {
                installed: false,
                _not_send: std::marker::PhantomData,
            };
        }
        GUARD.with(|g| {
            *g.borrow_mut() = Some(GuardState {
                deadline: limits.deadline,
                cancel: limits.cancel,
                work_budget: limits.work_budget,
                work: 0,
                since_check: 0,
                tripped: None,
            });
        });
        ACTIVE.with(|a| a.set(true));
        Scope {
            installed: true,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.installed {
            ACTIVE.with(|a| a.set(false));
            GUARD.with(|g| *g.borrow_mut() = None);
        }
    }
}

fn charge(st: &mut GuardState, n: u64) -> Option<DbError> {
    if let Some(e) = &st.tripped {
        return Some(e.clone());
    }
    st.work += n;
    st.since_check += n;
    if let Some(budget) = st.work_budget {
        if st.work > budget {
            let e = DbError::ResourceExhausted(format!(
                "work budget of {budget} units exceeded ({} charged)",
                st.work
            ));
            st.tripped = Some(e.clone());
            return Some(e);
        }
    }
    if st.since_check < CHECK_PERIOD {
        return None;
    }
    st.since_check = 0;
    if let Some(cancel) = &st.cancel {
        if cancel.load(Ordering::Relaxed) {
            let e = DbError::Canceled("cancel flag set".to_string());
            st.tripped = Some(e.clone());
            return Some(e);
        }
    }
    if let Some(deadline) = st.deadline {
        if Instant::now() >= deadline {
            let e = DbError::Timeout(format!("{} work units completed", st.work));
            st.tripped = Some(e.clone());
            return Some(e);
        }
    }
    None
}

/// Charges `n` work units against this thread's guard (if any) and returns
/// the governing error once a limit trips. Call from fallible hot loops —
/// one unit per row visited or page read.
#[inline]
pub fn checkpoint(n: u64) -> DbResult<()> {
    if !ACTIVE.with(|a| a.get()) {
        return Ok(());
    }
    GUARD.with(|g| match g.borrow_mut().as_mut() {
        Some(st) => match charge(st, n) {
            Some(e) => Err(e),
            None => Ok(()),
        },
        None => Ok(()),
    })
}

/// Charges `n` work units from an infallible site (B+tree iterators yield
/// plain tuples and cannot return an error). A tripped limit is latched and
/// surfaces at the next [`checkpoint`] call up-stack.
#[inline]
pub fn note_work(n: u64) {
    if !ACTIVE.with(|a| a.get()) {
        return;
    }
    GUARD.with(|g| {
        if let Some(st) = g.borrow_mut().as_mut() {
            let _ = charge(st, n);
        }
    });
}

/// `true` when a governance scope is installed on this thread (test aid).
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ungoverned_checkpoint_is_ok() {
        assert!(!active());
        for _ in 0..10_000 {
            checkpoint(1).unwrap();
        }
        note_work(1_000_000);
        checkpoint(1).unwrap();
    }

    #[test]
    fn budget_trips_exactly_and_latches() {
        let scope = Scope::enter(Limits {
            work_budget: Some(10),
            ..Limits::default()
        });
        for _ in 0..10 {
            checkpoint(1).unwrap();
        }
        let err = checkpoint(1).unwrap_err();
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
        // Latched: every later checkpoint repeats the verdict.
        assert!(matches!(
            checkpoint(1).unwrap_err(),
            DbError::ResourceExhausted(_)
        ));
        drop(scope);
        checkpoint(1).unwrap();
    }

    #[test]
    fn expired_deadline_trips_at_periodic_check() {
        let _scope = Scope::enter(Limits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Limits::default()
        });
        let mut tripped = None;
        for _ in 0..=CHECK_PERIOD {
            if let Err(e) = checkpoint(1) {
                tripped = Some(e);
                break;
            }
        }
        assert!(matches!(tripped, Some(DbError::Timeout(_))), "{tripped:?}");
    }

    #[test]
    fn cancel_flag_trips_cross_thread() {
        let cancel = Arc::new(AtomicBool::new(false));
        let _scope = Scope::enter(Limits {
            cancel: Some(Arc::clone(&cancel)),
            ..Limits::default()
        });
        for _ in 0..CHECK_PERIOD {
            checkpoint(1).unwrap();
        }
        cancel.store(true, Ordering::Relaxed);
        let mut tripped = None;
        for _ in 0..=CHECK_PERIOD {
            if let Err(e) = checkpoint(1) {
                tripped = Some(e);
                break;
            }
        }
        assert!(matches!(tripped, Some(DbError::Canceled(_))), "{tripped:?}");
    }

    #[test]
    fn note_work_latches_for_next_fallible_checkpoint() {
        let _scope = Scope::enter(Limits {
            work_budget: Some(5),
            ..Limits::default()
        });
        note_work(100); // infallible site blows the budget silently
        let err = checkpoint(0).unwrap_err();
        assert!(matches!(err, DbError::ResourceExhausted(_)), "{err}");
    }

    #[test]
    fn nested_scope_is_a_no_op_and_outer_keeps_governing() {
        let _outer = Scope::enter(Limits {
            work_budget: Some(10),
            ..Limits::default()
        });
        checkpoint(8).unwrap();
        {
            // An inner statement must not reset the whole-query budget.
            let _inner = Scope::enter(Limits {
                work_budget: Some(1_000_000),
                ..Limits::default()
            });
            assert!(checkpoint(8).is_err(), "outer budget still applies");
        }
        assert!(active(), "inner drop must not uninstall the outer scope");
    }

    #[test]
    fn unlimited_scope_installs_nothing() {
        let _scope = Scope::enter(Limits::default());
        assert!(!active());
    }
}
