//! Plan execution.
//!
//! The executor is operator-at-a-time: every node materializes its output
//! rows (MonetDB-style), which keeps correlated-subquery and join logic
//! simple and auditable. For the translated-XPath workload this is the right
//! trade-off — the interesting costs are index traffic and row counts, which
//! are reported through [`ExecStats`].
//!
//! Index bounds are evaluated per outer row, so a bound index access under a
//! [`Node::Join`] *is* the index-nested-loop join.

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::expr::{eval, EvalContext, Expr};
use crate::plan::{Access, AccessPath, AggCall, AggFunc, Node, SelectPlan};
use crate::storage::Pager;
use crate::value::{decode_range_batch, encode_key, encode_key_value, Row, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Bound;
use std::time::{Duration, Instant};

/// Per-statement execution counters. These are the engine-level cost metrics
/// the benchmark harness reports alongside wall-clock times.
///
/// The first six counters are maintained directly by the executor; the
/// buffer-pool (`pages_*`, `cache_*`, `evictions`) and B+tree (`btree_*`)
/// counters are folded in per statement by [`crate::Database::run`] from the
/// pager and index-tree deltas observed across the statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows fetched from heap storage.
    pub rows_scanned: u64,
    /// Index range scans opened.
    pub index_scans: u64,
    /// Row ids returned by index scans.
    pub index_rows: u64,
    /// Rows passed through sort operators.
    pub rows_sorted: u64,
    /// Correlated/scalar subquery executions.
    pub subquery_evals: u64,
    /// Rows written (INSERT + UPDATE + DELETE).
    pub rows_written: u64,
    /// Logical page reads (every page access, cached or not).
    pub pages_read: u64,
    /// Page reads served from memory (`pages_read - cache_misses`).
    pub cache_hits: u64,
    /// Page reads that went to the backing file (always 0 in memory mode).
    pub cache_misses: u64,
    /// Pages written to the backing file (always 0 in memory mode).
    pub pages_written: u64,
    /// Buffer-pool frames evicted (always 0 in memory mode).
    pub evictions: u64,
    /// B+tree root-to-leaf descents (lookups, writes, range-scan seeks).
    pub btree_descents: u64,
    /// B+tree range positionings that reused the previous range's finger
    /// (leaf-link walk) instead of descending from the root.
    pub btree_descent_reuses: u64,
    /// B+tree leaf nodes visited by range scans.
    pub btree_leaf_scans: u64,
    /// B+tree node splits triggered by index maintenance.
    pub btree_splits: u64,
    /// Physical page reads retried after an I/O error or checksum mismatch
    /// (folded in from the pager; always 0 in memory mode).
    pub read_retries: u64,
    /// Statements that tripped their deadline ([`crate::DbError::Timeout`]).
    /// Only ever non-zero in cumulative totals — a timed-out statement
    /// returns no per-statement stats.
    pub queries_timed_out: u64,
    /// Statements canceled via the shared cancel flag
    /// ([`crate::DbError::Canceled`]). Cumulative-only, like
    /// `queries_timed_out`.
    pub queries_canceled: u64,
}

impl ExecStats {
    /// Adds another stats snapshot into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_scans += other.index_scans;
        self.index_rows += other.index_rows;
        self.rows_sorted += other.rows_sorted;
        self.subquery_evals += other.subquery_evals;
        self.rows_written += other.rows_written;
        self.pages_read += other.pages_read;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.pages_written += other.pages_written;
        self.evictions += other.evictions;
        self.btree_descents += other.btree_descents;
        self.btree_descent_reuses += other.btree_descent_reuses;
        self.btree_leaf_scans += other.btree_leaf_scans;
        self.btree_splits += other.btree_splits;
        self.read_retries += other.read_retries;
        self.queries_timed_out += other.queries_timed_out;
        self.queries_canceled += other.queries_canceled;
    }
}

/// A thread-safe accumulation cell for [`ExecStats`]: eighteen relaxed
/// atomics, one per counter. [`crate::Database`] keeps its cumulative
/// per-database totals in one of these so that concurrent readers merging
/// their statement stats never serialize on a mutex (the totals latch used
/// to be the last lock on the shared-read path).
#[derive(Debug, Default)]
pub struct SharedExecStats {
    cells: [std::sync::atomic::AtomicU64; 18],
}

impl SharedExecStats {
    /// Adds `stats` into the totals.
    pub fn merge(&self, stats: &ExecStats) {
        use std::sync::atomic::Ordering;
        for (cell, v) in self.cells.iter().zip(Self::unpack(stats)) {
            if v > 0 {
                cell.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// A plain-value copy of the totals.
    pub fn snapshot(&self) -> ExecStats {
        use std::sync::atomic::Ordering;
        let mut vals = [0u64; 18];
        for (v, cell) in vals.iter_mut().zip(self.cells.iter()) {
            *v = cell.load(Ordering::Relaxed);
        }
        Self::pack(vals)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        use std::sync::atomic::Ordering;
        for cell in &self.cells {
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn unpack(s: &ExecStats) -> [u64; 18] {
        [
            s.rows_scanned,
            s.index_scans,
            s.index_rows,
            s.rows_sorted,
            s.subquery_evals,
            s.rows_written,
            s.pages_read,
            s.cache_hits,
            s.cache_misses,
            s.pages_written,
            s.evictions,
            s.btree_descents,
            s.btree_descent_reuses,
            s.btree_leaf_scans,
            s.btree_splits,
            s.read_retries,
            s.queries_timed_out,
            s.queries_canceled,
        ]
    }

    fn pack(v: [u64; 18]) -> ExecStats {
        ExecStats {
            rows_scanned: v[0],
            index_scans: v[1],
            index_rows: v[2],
            rows_sorted: v[3],
            subquery_evals: v[4],
            rows_written: v[5],
            pages_read: v[6],
            cache_hits: v[7],
            cache_misses: v[8],
            pages_written: v[9],
            evictions: v[10],
            btree_descents: v[11],
            btree_descent_reuses: v[12],
            btree_leaf_scans: v[13],
            btree_splits: v[14],
            read_retries: v[15],
            queries_timed_out: v[16],
            queries_canceled: v[17],
        }
    }
}

/// Per-operator runtime profile collected under `EXPLAIN ANALYZE`.
///
/// `elapsed` is *inclusive* of the operator's children (the executor is
/// operator-at-a-time, so a parent's timer spans its children's full
/// materialization).
#[derive(Debug, Default, Clone, Copy)]
pub struct OpProfile {
    /// Times the operator ran (> 1 under nested-loop re-execution).
    pub invocations: u64,
    /// Total rows the operator produced across all invocations.
    pub rows_out: u64,
    /// Total wall-clock time, inclusive of children.
    pub elapsed: Duration,
}

/// Collects [`OpProfile`]s during an `EXPLAIN ANALYZE` run, keyed by plan
/// node identity (the address of the [`Node`] within the executed plan — the
/// renderer must walk the *same* plan value).
#[derive(Debug, Default)]
pub struct Profiler {
    ops: HashMap<usize, OpProfile>,
}

impl Profiler {
    /// The collected profile for `node`, if it ran.
    pub fn get(&self, node: &Node) -> Option<OpProfile> {
        self.ops.get(&(node as *const Node as usize)).copied()
    }
}

/// Everything a plan needs to run.
pub struct Env<'a> {
    /// Table catalog.
    pub catalog: &'a Catalog,
    /// Page storage.
    pub pager: &'a Pager,
    /// Statement parameters (`?` values).
    pub params: &'a [Value],
    /// Per-operator profiler, set only under `EXPLAIN ANALYZE`.
    pub prof: Option<&'a RefCell<Profiler>>,
}

/// Runs a planned `SELECT`, returning its rows. `outer` is the correlated
/// row when the plan is a subquery.
pub fn run_select(
    env: &Env<'_>,
    stats: &mut ExecStats,
    plan: &SelectPlan,
    outer: Option<&[Value]>,
) -> DbResult<Vec<Row>> {
    run_node(env, stats, &plan.subplans, &plan.root, outer)
}

/// Stable trace-span name for a plan operator.
fn op_name(node: &Node) -> &'static str {
    match node {
        Node::OneRow => "op.one_row",
        Node::Scan(_) => "op.scan",
        Node::Join { .. } => "op.join",
        Node::Filter { .. } => "op.filter",
        Node::Aggregate { .. } => "op.aggregate",
        Node::Sort { .. } => "op.sort",
        Node::Project { .. } => "op.project",
        Node::Distinct { .. } => "op.distinct",
        Node::Limit { .. } => "op.limit",
    }
}

fn run_node(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    node: &Node,
    outer: Option<&[Value]>,
) -> DbResult<Vec<Row>> {
    let _span = crate::trace::span(op_name(node));
    let Some(prof) = env.prof else {
        return run_node_inner(env, stats, subplans, node, outer);
    };
    let start = Instant::now();
    let result = run_node_inner(env, stats, subplans, node, outer);
    let elapsed = start.elapsed();
    let mut prof = prof.borrow_mut();
    let op = prof.ops.entry(node as *const Node as usize).or_default();
    op.invocations += 1;
    op.elapsed += elapsed;
    if let Ok(rows) = &result {
        op.rows_out += rows.len() as u64;
    }
    result
}

fn run_node_inner(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    node: &Node,
    outer: Option<&[Value]>,
) -> DbResult<Vec<Row>> {
    match node {
        Node::OneRow => Ok(vec![Vec::new()]),
        Node::Scan(access) => run_access(env, stats, subplans, access, &[], outer),
        Node::Filter { input, pred } => {
            let rows = run_node(env, stats, subplans, input, outer)?;
            let mut out = Vec::new();
            for row in rows {
                crate::governance::checkpoint(1)?;
                let keep = {
                    let mut ctx = Ctx {
                        env,
                        stats,
                        subplans,
                        row: &row,
                        outer,
                    };
                    eval(pred, &mut ctx)?.is_true()
                };
                if keep {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Node::Join {
            left,
            right,
            residual,
            hash_keys,
        } => {
            let left_rows = run_node(env, stats, subplans, left, outer)?;
            if let Some((lk, rk)) = hash_keys {
                return run_hash_join(
                    env,
                    stats,
                    subplans,
                    left_rows,
                    right,
                    lk,
                    rk,
                    residual.as_ref(),
                    outer,
                );
            }
            let mut out = Vec::new();
            // Cache full-scan inners: scanning the heap once per outer row
            // would be quadratic in I/O for plain nested loops.
            let cached_inner = if right.path == AccessPath::FullScan {
                Some(run_access(env, stats, subplans, right, &[], outer)?)
            } else {
                None
            };
            for lrow in left_rows {
                crate::governance::checkpoint(1)?;
                let rrows = match &cached_inner {
                    Some(c) => c.clone(),
                    None => run_access(env, stats, subplans, right, &lrow, outer)?,
                };
                for rrow in rrows {
                    crate::governance::checkpoint(1)?;
                    let mut combined = lrow.clone();
                    combined.extend(rrow);
                    let keep = match residual {
                        None => true,
                        Some(pred) => {
                            let mut ctx = Ctx {
                                env,
                                stats,
                                subplans,
                                row: &combined,
                                outer,
                            };
                            eval(pred, &mut ctx)?.is_true()
                        }
                    };
                    if keep {
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        }
        Node::Aggregate {
            input,
            group_by,
            aggs,
        } => run_aggregate(env, stats, subplans, input, group_by, aggs, outer),
        Node::Sort { input, keys } => {
            let rows = run_node(env, stats, subplans, input, outer)?;
            stats.rows_sorted += rows.len() as u64;
            // Precompute sort keys.
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                crate::governance::checkpoint(1)?;
                let mut kv = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    let mut ctx = Ctx {
                        env,
                        stats,
                        subplans,
                        row: &row,
                        outer,
                    };
                    kv.push(eval(e, &mut ctx)?);
                }
                keyed.push((kv, row));
            }
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = a[i].total_cmp(&b[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        Node::Project { input, exprs } => {
            let rows = run_node(env, stats, subplans, input, outer)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                crate::governance::checkpoint(1)?;
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    let mut ctx = Ctx {
                        env,
                        stats,
                        subplans,
                        row: &row,
                        outer,
                    };
                    projected.push(eval(e, &mut ctx)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        Node::Distinct { input } => {
            let rows = run_node(env, stats, subplans, input, outer)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                crate::governance::checkpoint(1)?;
                if seen.insert(encode_key(&row)) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Node::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = run_node(env, stats, subplans, input, outer)?;
            let eval_const = |e: &Option<Expr>, stats: &mut ExecStats| -> DbResult<Option<usize>> {
                let Some(e) = e else { return Ok(None) };
                let mut ctx = Ctx {
                    env,
                    stats,
                    subplans,
                    row: &[],
                    outer,
                };
                let v = eval(e, &mut ctx)?;
                let i = v.as_int()?;
                usize::try_from(i)
                    .map(Some)
                    .map_err(|_| DbError::Eval(format!("negative LIMIT/OFFSET {i}")))
            };
            let offset = eval_const(offset, stats)?.unwrap_or(0);
            let limit = eval_const(limit, stats)?.unwrap_or(usize::MAX);
            Ok(rows.into_iter().skip(offset).take(limit).collect())
        }
    }
}

/// Fetches one table's rows, with index bounds evaluated against `left_row`
/// (the joined prefix) and `outer` (the correlated row).
fn run_access(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    access: &Access,
    left_row: &[Value],
    outer: Option<&[Value]>,
) -> DbResult<Vec<Row>> {
    let table = env.catalog.table(&access.table)?;
    match &access.path {
        AccessPath::FullScan => {
            let mut out = Vec::with_capacity(table.row_count() as usize);
            for pi in 0..table.heap.page_count() {
                for (_, rec) in table.heap.page_rows(env.pager, pi)? {
                    crate::governance::checkpoint(1)?;
                    out.push(crate::value::decode_row(&rec)?);
                }
            }
            stats.rows_scanned += out.len() as u64;
            Ok(out)
        }
        AccessPath::Index { index, reverse, .. } => {
            let Some((lo, hi)) = compute_bounds(env, stats, subplans, access, left_row, outer)?
            else {
                return Ok(Vec::new()); // NULL or incompatible bound: no match
            };
            stats.index_scans += 1;
            let rowids = table.index_range(*index, bound_as_ref(&lo), bound_as_ref(&hi), *reverse);
            stats.index_rows += rowids.len() as u64;
            stats.rows_scanned += rowids.len() as u64;
            rowids
                .into_iter()
                .map(|rid| {
                    crate::governance::checkpoint(1)?;
                    table.get_row(env.pager, rid)
                })
                .collect()
        }
        AccessPath::MultiRange { index, .. } => {
            let ranges = compute_multi_ranges(env, stats, subplans, access, left_row, outer)?;
            stats.index_scans += 1;
            let mut out = Vec::new();
            // The ranges are merged and ascending, so scanning them as one
            // fingered batch yields the union already in key order — one
            // root descent for the first range, a leaf-link walk for each
            // range after it (`btree_descent_reuses`).
            for rowids in table.index_range_multi(*index, &ranges) {
                stats.index_rows += rowids.len() as u64;
                stats.rows_scanned += rowids.len() as u64;
                for rid in rowids {
                    crate::governance::checkpoint(1)?;
                    out.push(table.get_row(env.pager, rid)?);
                }
            }
            Ok(out)
        }
    }
}

/// Collects `(RowId, row)` pairs of a single table matching an access path —
/// the row-source for `UPDATE` and `DELETE`, which must know row ids.
/// Bound expressions may reference parameters and constants only (they are
/// evaluated against an empty row).
pub fn scan_for_update(
    env: &Env<'_>,
    stats: &mut ExecStats,
    table_name: &str,
    path: &AccessPath,
) -> DbResult<Vec<(crate::storage::RowId, Row)>> {
    let table = env.catalog.table(table_name)?;
    match path {
        AccessPath::FullScan => {
            let mut out = Vec::with_capacity(table.row_count() as usize);
            for pi in 0..table.heap.page_count() {
                for (rid, rec) in table.heap.page_rows(env.pager, pi)? {
                    crate::governance::checkpoint(1)?;
                    out.push((rid, crate::value::decode_row(&rec)?));
                }
            }
            stats.rows_scanned += out.len() as u64;
            Ok(out)
        }
        AccessPath::Index {
            index,
            eq,
            lower,
            upper,
            reverse,
        } => {
            let access = Access {
                table: table_name.to_string(),
                path: AccessPath::Index {
                    index: *index,
                    eq: eq.clone(),
                    lower: lower.clone(),
                    upper: upper.clone(),
                    reverse: *reverse,
                },
                width: table.schema.columns.len(),
            };
            // Reuse the bound computation from run_access by asking for the
            // row ids through the same range math.
            let Some((lo, hi)) = compute_bounds(env, stats, &[], &access, &[], None)? else {
                return Ok(Vec::new());
            };
            stats.index_scans += 1;
            let rowids = table.index_range(*index, bound_as_ref(&lo), bound_as_ref(&hi), *reverse);
            stats.index_rows += rowids.len() as u64;
            stats.rows_scanned += rowids.len() as u64;
            rowids
                .into_iter()
                .map(|rid| {
                    crate::governance::checkpoint(1)?;
                    Ok((rid, table.get_row(env.pager, rid)?))
                })
                .collect()
        }
        AccessPath::MultiRange { index, .. } => {
            let access = Access {
                table: table_name.to_string(),
                path: path.clone(),
                width: table.schema.columns.len(),
            };
            let ranges = compute_multi_ranges(env, stats, &[], &access, &[], None)?;
            stats.index_scans += 1;
            let mut out = Vec::new();
            for rowids in table.index_range_multi(*index, &ranges) {
                stats.index_rows += rowids.len() as u64;
                stats.rows_scanned += rowids.len() as u64;
                for rid in rowids {
                    crate::governance::checkpoint(1)?;
                    out.push((rid, table.get_row(env.pager, rid)?));
                }
            }
            Ok(out)
        }
    }
}

/// A resolved byte-key range: `(lower, upper)` bounds.
type KeyRange = (Bound<Vec<u8>>, Bound<Vec<u8>>);

/// A `[start, end)` byte-key interval; `None` means unbounded on that side
/// (intermediate form while resolving and merging a multi-range batch).
type HalfOpenKeyRange = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Evaluates an index access's bound expressions into byte-range bounds.
/// Returns `None` when the range is provably empty (a NULL or incompatible
/// bound value).
fn compute_bounds(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    access: &Access,
    left_row: &[Value],
    outer: Option<&[Value]>,
) -> DbResult<Option<KeyRange>> {
    let table = env.catalog.table(&access.table)?;
    let AccessPath::Index {
        index,
        eq,
        lower,
        upper,
        ..
    } = &access.path
    else {
        return Err(DbError::Eval("compute_bounds on a full scan".into()));
    };
    let index_cols: &[usize] = match index {
        None => &table.schema.primary_key,
        Some(i) => &table.indexes[*i].0.columns,
    };
    let eval_bound = |e: &Expr, stats: &mut ExecStats| -> DbResult<Value> {
        let mut ctx = Ctx {
            env,
            stats,
            subplans,
            row: left_row,
            outer,
        };
        eval(e, &mut ctx)
    };
    let mut prefix = Vec::new();
    for (i, e) in eq.iter().enumerate() {
        let v = eval_bound(e, stats)?;
        if v.is_null() {
            return Ok(None);
        }
        let ty = table.schema.columns[index_cols[i]].ty;
        let Ok(v) = v.coerce(ty) else {
            return Ok(None);
        };
        encode_key_value(&v, &mut prefix);
    }
    let range_ty = index_cols
        .get(eq.len())
        .map(|&c| table.schema.columns[c].ty);
    let mut lo_key = prefix.clone();
    let lo_bound = match lower {
        Some((e, inclusive)) => {
            let v = eval_bound(e, stats)?;
            if v.is_null() {
                return Ok(None);
            }
            let ty = range_ty.expect("range implies another index column");
            let Ok(v) = v.coerce(ty) else {
                return Ok(None);
            };
            encode_key_value(&v, &mut lo_key);
            if *inclusive {
                Bound::Included(lo_key)
            } else {
                match prefix_successor(lo_key) {
                    Some(k) => Bound::Included(k),
                    None => Bound::Unbounded,
                }
            }
        }
        None => {
            if lo_key.is_empty() {
                Bound::Unbounded
            } else {
                Bound::Included(lo_key)
            }
        }
    };
    let mut hi_key = prefix;
    let hi_bound = match upper {
        Some((e, inclusive)) => {
            let v = eval_bound(e, stats)?;
            if v.is_null() {
                return Ok(None);
            }
            let ty = range_ty.expect("range implies another index column");
            let Ok(v) = v.coerce(ty) else {
                return Ok(None);
            };
            encode_key_value(&v, &mut hi_key);
            if *inclusive {
                match prefix_successor(hi_key) {
                    Some(k) => Bound::Excluded(k),
                    None => Bound::Unbounded,
                }
            } else {
                Bound::Excluded(hi_key)
            }
        }
        None => {
            if hi_key.is_empty() {
                Bound::Unbounded
            } else {
                match prefix_successor(hi_key) {
                    Some(k) => Bound::Excluded(k),
                    None => Bound::Unbounded,
                }
            }
        }
    };
    Ok(Some((lo_bound, hi_bound)))
}

/// Evaluates a multi-range access's equality prefix and batch parameter
/// into byte-key ranges: sorted ascending, overlapping/adjacent entries
/// merged, provably-empty entries dropped. Lower bounds come out as
/// `Included`/`Unbounded` and upper bounds as `Excluded`/`Unbounded`, so
/// the merged list partitions the key space into disjoint ascending
/// intervals — scanning them in order yields the union in key order.
fn compute_multi_ranges(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    access: &Access,
    left_row: &[Value],
    outer: Option<&[Value]>,
) -> DbResult<Vec<KeyRange>> {
    let table = env.catalog.table(&access.table)?;
    let AccessPath::MultiRange { index, eq, ranges } = &access.path else {
        return Err(DbError::Eval(
            "compute_multi_ranges on a non-multi-range access".into(),
        ));
    };
    let index_cols: &[usize] = match index {
        None => &table.schema.primary_key,
        Some(i) => &table.indexes[*i].0.columns,
    };
    let eval_expr = |e: &Expr, stats: &mut ExecStats| -> DbResult<Value> {
        let mut ctx = Ctx {
            env,
            stats,
            subplans,
            row: left_row,
            outer,
        };
        eval(e, &mut ctx)
    };
    let mut prefix = Vec::new();
    for (i, e) in eq.iter().enumerate() {
        let v = eval_expr(e, stats)?;
        if v.is_null() {
            return Ok(Vec::new());
        }
        let ty = table.schema.columns[index_cols[i]].ty;
        let Ok(v) = v.coerce(ty) else {
            return Ok(Vec::new());
        };
        encode_key_value(&v, &mut prefix);
    }
    let batch = eval_expr(ranges, stats)?;
    let specs = decode_range_batch(batch.as_bytes()?)?;
    let range_ty = index_cols
        .get(eq.len())
        .map(|&c| table.schema.columns[c].ty);
    // Resolve each spec to (start, end): `None` start = unbounded below,
    // `None` end = unbounded above; a concrete start is inclusive and a
    // concrete end exclusive (mirroring `compute_bounds`).
    let mut resolved: Vec<HalfOpenKeyRange> = Vec::new();
    for spec in specs {
        let start = if spec.lo.is_null() {
            if prefix.is_empty() {
                None
            } else {
                Some(prefix.clone())
            }
        } else {
            let ty = range_ty.expect("range implies another index column");
            let Ok(v) = spec.lo.coerce(ty) else {
                continue; // incompatible bound: this range matches nothing
            };
            let mut k = prefix.clone();
            encode_key_value(&v, &mut k);
            if spec.lo_inclusive {
                Some(k)
            } else {
                prefix_successor(k)
            }
        };
        let end = if spec.hi.is_null() {
            if prefix.is_empty() {
                None
            } else {
                prefix_successor(prefix.clone())
            }
        } else {
            let ty = range_ty.expect("range implies another index column");
            let Ok(v) = spec.hi.coerce(ty) else {
                continue;
            };
            let mut k = prefix.clone();
            encode_key_value(&v, &mut k);
            if spec.hi_inclusive {
                prefix_successor(k)
            } else {
                Some(k)
            }
        };
        if let (Some(s), Some(e)) = (&start, &end) {
            if s >= e {
                continue; // provably empty
            }
        }
        resolved.push((start, end));
    }
    // Sort by start and merge overlapping/adjacent intervals (an exclusive
    // end touching the next inclusive start is contiguous in key space).
    resolved.sort_by(|a, b| match (&a.0, &b.0) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => x.cmp(y),
    });
    let mut merged: Vec<HalfOpenKeyRange> = Vec::new();
    for (start, end) in resolved {
        if let Some((_, last_end)) = merged.last_mut() {
            let touches = match (&*last_end, &start) {
                (None, _) => true, // previous interval is already unbounded
                (Some(e), Some(s)) => s <= e,
                (Some(_), None) => true, // unbounded start (sorted first)
            };
            if touches {
                let extends = match (&*last_end, &end) {
                    (None, _) => false,
                    (Some(_), None) => true,
                    (Some(a), Some(b)) => b > a,
                };
                if extends {
                    *last_end = end;
                }
                continue;
            }
        }
        merged.push((start, end));
    }
    Ok(merged
        .into_iter()
        .map(|(start, end)| {
            (
                start.map_or(Bound::Unbounded, Bound::Included),
                end.map_or(Bound::Unbounded, Bound::Excluded),
            )
        })
        .collect())
}

/// Borrows a `Bound<Vec<u8>>` as `Bound<&[u8]>`.
fn bound_as_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
    match b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Smallest byte string greater than every string prefixed by `k`
/// (`None` when no such string exists, i.e. `k` is all `0xFF`).
pub fn prefix_successor(mut k: Vec<u8>) -> Option<Vec<u8>> {
    while k.last() == Some(&0xFF) {
        k.pop();
    }
    let last = k.pop()?;
    k.push(last + 1);
    Some(k)
}

#[allow(clippy::too_many_arguments)]
fn run_hash_join(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    left_rows: Vec<Row>,
    right: &Access,
    left_keys: &[Expr],
    right_keys: &[Expr],
    residual: Option<&Expr>,
    outer: Option<&[Value]>,
) -> DbResult<Vec<Row>> {
    let right_rows = run_access(env, stats, subplans, right, &[], outer)?;
    // Build side: right table.
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    for (i, rrow) in right_rows.iter().enumerate() {
        crate::governance::checkpoint(1)?;
        let mut vals = Vec::with_capacity(right_keys.len());
        let mut null = false;
        for e in right_keys {
            let mut ctx = Ctx {
                env,
                stats,
                subplans,
                row: rrow,
                outer,
            };
            let v = eval(e, &mut ctx)?;
            null |= v.is_null();
            vals.push(v);
        }
        if null {
            continue; // NULL keys never join
        }
        table.entry(encode_key(&vals)).or_default().push(i);
    }
    let mut out = Vec::new();
    for lrow in left_rows {
        crate::governance::checkpoint(1)?;
        let mut vals = Vec::with_capacity(left_keys.len());
        let mut null = false;
        for e in left_keys {
            let mut ctx = Ctx {
                env,
                stats,
                subplans,
                row: &lrow,
                outer,
            };
            let v = eval(e, &mut ctx)?;
            null |= v.is_null();
            vals.push(v);
        }
        if null {
            continue;
        }
        let Some(matches) = table.get(&encode_key(&vals)) else {
            continue;
        };
        for &ri in matches {
            let mut combined = lrow.clone();
            combined.extend(right_rows[ri].iter().cloned());
            let keep = match residual {
                None => true,
                Some(pred) => {
                    let mut ctx = Ctx {
                        env,
                        stats,
                        subplans,
                        row: &combined,
                        outer,
                    };
                    eval(pred, &mut ctx)?.is_true()
                }
            };
            if keep {
                out.push(combined);
            }
        }
    }
    Ok(out)
}

fn run_aggregate(
    env: &Env<'_>,
    stats: &mut ExecStats,
    subplans: &[SelectPlan],
    input: &Node,
    group_by: &[Expr],
    aggs: &[AggCall],
    outer: Option<&[Value]>,
) -> DbResult<Vec<Row>> {
    let rows = run_node(env, stats, subplans, input, outer)?;
    // Group order = first-occurrence order.
    let mut groups: Vec<(Vec<Value>, Vec<Acc>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    if group_by.is_empty() {
        groups.push((Vec::new(), aggs.iter().map(Acc::new).collect()));
        index.insert(Vec::new(), 0);
    }
    for row in &rows {
        crate::governance::checkpoint(1)?;
        let mut gvals = Vec::with_capacity(group_by.len());
        for e in group_by {
            let mut ctx = Ctx {
                env,
                stats,
                subplans,
                row,
                outer,
            };
            gvals.push(eval(e, &mut ctx)?);
        }
        let key = encode_key(&gvals);
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                groups.push((gvals, aggs.iter().map(Acc::new).collect()));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (acc, call) in groups[gi].1.iter_mut().zip(aggs) {
            let arg = match &call.arg {
                None => None,
                Some(e) => {
                    let mut ctx = Ctx {
                        env,
                        stats,
                        subplans,
                        row,
                        outer,
                    };
                    Some(eval(e, &mut ctx)?)
                }
            };
            acc.update(arg)?;
        }
    }
    Ok(groups
        .into_iter()
        .map(|(gvals, accs)| {
            let mut row = gvals;
            row.extend(accs.into_iter().map(Acc::finish));
            row
        })
        .collect())
}

/// An aggregate accumulator.
enum Acc {
    Count(i64),
    CountStar(i64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl Acc {
    fn new(call: &AggCall) -> Acc {
        match call.func {
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, arg: Option<Value>) -> DbResult<()> {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count(n) => {
                if !arg.expect("COUNT(expr) has an argument").is_null() {
                    *n += 1;
                }
            }
            Acc::Sum(slot) => {
                let v = arg.expect("SUM has an argument");
                if v.is_null() {
                    return Ok(());
                }
                *slot = Some(match slot.take() {
                    None => v,
                    Some(Value::Int(a)) => match v {
                        Value::Int(b) => Value::Int(
                            a.checked_add(b)
                                .ok_or_else(|| DbError::Eval("integer overflow in SUM".into()))?,
                        ),
                        other => Value::Float(a as f64 + other.as_float()?),
                    },
                    Some(Value::Float(a)) => Value::Float(a + v.as_float()?),
                    Some(other) => {
                        return Err(DbError::Eval(format!("SUM over non-number {other}")))
                    }
                });
            }
            Acc::Min(slot) => {
                if !arg.as_ref().expect("MIN has an argument").is_null() {
                    let v = arg.expect("checked");
                    let replace = match slot {
                        None => true,
                        Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *slot = Some(v);
                    }
                }
            }
            Acc::Max(slot) => {
                if !arg.as_ref().expect("MAX has an argument").is_null() {
                    let v = arg.expect("checked");
                    let replace = match slot {
                        None => true,
                        Some(cur) => v.total_cmp(cur) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *slot = Some(v);
                    }
                }
            }
            Acc::Avg { sum, n } => {
                let v = arg.expect("AVG has an argument");
                if !v.is_null() {
                    *sum += v.as_float()?;
                    *n += 1;
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) | Acc::CountStar(n) => Value::Int(n),
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// The evaluation context wiring rows, params, and subplans together.
struct Ctx<'a, 'b> {
    env: &'a Env<'a>,
    stats: &'b mut ExecStats,
    subplans: &'a [SelectPlan],
    row: &'b [Value],
    outer: Option<&'b [Value]>,
}

impl EvalContext for Ctx<'_, '_> {
    fn column(&self, i: usize) -> DbResult<Value> {
        self.row
            .get(i)
            .cloned()
            .ok_or_else(|| DbError::Eval(format!("column index {i} out of range")))
    }

    fn outer_column(&self, i: usize) -> DbResult<Value> {
        self.outer
            .and_then(|o| o.get(i))
            .cloned()
            .ok_or_else(|| DbError::Eval(format!("outer column index {i} out of range")))
    }

    fn param(&self, i: usize) -> DbResult<Value> {
        self.env
            .params
            .get(i)
            .cloned()
            .ok_or_else(|| DbError::Eval(format!("parameter ?{} not supplied", i + 1)))
    }

    fn subquery(&mut self, i: usize) -> DbResult<Value> {
        self.stats.subquery_evals += 1;
        let plan = self
            .subplans
            .get(i)
            .ok_or_else(|| DbError::Eval(format!("subquery slot {i} out of range")))?;
        let rows = run_select(self.env, self.stats, plan, Some(self.row))?;
        match rows.len() {
            0 => Ok(Value::Null),
            1 => {
                let row = rows.into_iter().next().expect("length checked");
                if row.len() != 1 {
                    return Err(DbError::Eval(format!(
                        "scalar subquery returned {} columns",
                        row.len()
                    )));
                }
                Ok(row.into_iter().next().expect("length checked"))
            }
            n => Err(DbError::Eval(format!("scalar subquery returned {n} rows"))),
        }
    }

    fn exists(&mut self, i: usize) -> DbResult<bool> {
        self.stats.subquery_evals += 1;
        let plan = self
            .subplans
            .get(i)
            .ok_or_else(|| DbError::Eval(format!("subquery slot {i} out of range")))?;
        let rows = run_select(self.env, self.stats, plan, Some(self.row))?;
        Ok(!rows.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_successor_cases() {
        assert_eq!(prefix_successor(vec![1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(prefix_successor(vec![1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_successor(vec![0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(vec![]), None);
        assert_eq!(prefix_successor(vec![0]), Some(vec![1]));
    }

    #[test]
    fn prefix_successor_edge_keys() {
        // A single all-0xFF byte and longer all-0xFF keys have no successor.
        assert_eq!(prefix_successor(vec![0xFF]), None);
        assert_eq!(prefix_successor(vec![0xFF; 16]), None);
        // 0xFE bumps to 0xFF; trailing 0xFF runs are stripped first.
        assert_eq!(prefix_successor(vec![0xFE]), Some(vec![0xFF]));
        assert_eq!(prefix_successor(vec![7, 0xFF, 0xFF, 0xFF]), Some(vec![8]));
    }

    #[test]
    fn prefix_successor_bounds_every_extension() {
        // The successor must sort above the key and any extension of it.
        for key in [vec![3u8, 1], vec![0, 0], vec![9, 0xFF, 2]] {
            let succ = prefix_successor(key.clone()).unwrap();
            assert!(succ > key, "{succ:?} vs {key:?}");
            let mut ext = key.clone();
            ext.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
            assert!(succ > ext, "{succ:?} vs {ext:?}");
        }
    }
}
