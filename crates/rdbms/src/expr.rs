//! Scalar expressions: AST and evaluation.
//!
//! The parser produces expressions containing unresolved [`Expr::Name`]s;
//! the planner *binds* them into positional [`Expr::Column`] /
//! [`Expr::OuterColumn`] references (and rewrites scalar subqueries into
//! [`Expr::Subquery`] slots). Evaluation is pure except for subqueries, which
//! are delegated to the executor through the [`EvalContext`] trait.
//!
//! Comparison follows SQL three-valued logic: any comparison with `NULL`
//! yields unknown, which behaves as false at filter boundaries; `AND`/`OR`
//! propagate unknown per the standard truth tables.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical conjunction (three-valued).
    And,
    /// Logical disjunction (three-valued).
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division when both sides are integers).
    Div,
    /// `%`
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// An unresolved column name (`a`, `t.a`), as produced by the parser.
    Name(String),
    /// A bound reference into the current row.
    Column(usize),
    /// A bound reference into the enclosing query's row (correlation).
    OuterColumn(usize),
    /// A positional statement parameter (`?`), 0-based.
    Param(usize),
    /// A unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// The matched expression.
        expr: Box<Expr>,
        /// The pattern expression.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Inclusive lower bound.
        low: Box<Expr>,
        /// Inclusive upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// A function call, possibly an aggregate (`COUNT(*)` is
    /// `Func("COUNT", [], star=true)`); the planner decides which.
    Func {
        /// Upper-cased function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// `f(*)` (only valid for `COUNT`).
        star: bool,
    },
    /// A scalar subquery, bound by the planner to a subplan slot.
    Subquery(usize),
    /// `EXISTS (subquery)`, bound by the planner to a subplan slot.
    Exists(usize),
}

impl fmt::Display for Expr {
    /// SQL-ish rendering for plan output (`EXPLAIN`). Bound columns print as
    /// `#i` (combined-row position), outer references as `outer.#i`, and
    /// parameters as `?n` (1-based, like the parser counts them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Name(n) => f.write_str(n),
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::OuterColumn(i) => write!(f, "outer.#{i}"),
            Expr::Param(i) => write!(f, "?{}", i + 1),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "NOT ({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, l, r) => match op {
                BinOp::And | BinOp::Or => write!(f, "({l} {op} {r})"),
                _ => write!(f, "{l} {op} {r}"),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Func { name, args, star } => {
                write!(f, "{name}(")?;
                if *star {
                    f.write_str("*")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Subquery(slot) => write!(f, "subquery ${slot}"),
            Expr::Exists(slot) => write!(f, "EXISTS ${slot}"),
        }
    }
}

impl Expr {
    /// Shorthand for a binary expression.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Walks the expression tree, applying `f` to every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Literal(_)
            | Expr::Name(_)
            | Expr::Column(_)
            | Expr::OuterColumn(_)
            | Expr::Param(_)
            | Expr::Subquery(_)
            | Expr::Exists(_) => {}
        }
    }

    /// Rewrites every node bottom-up with `f`.
    pub fn map(self, f: &mut impl FnMut(Expr) -> DbResult<Expr>) -> DbResult<Expr> {
        let rewritten = match self {
            Expr::Unary(op, e) => Expr::Unary(op, Box::new(e.map(f)?)),
            Expr::Binary(op, l, r) => Expr::Binary(op, Box::new(l.map(f)?), Box::new(r.map(f)?)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.map(f)?),
                pattern: Box::new(pattern.map(f)?),
                negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.map(f)?),
                low: Box::new(low.map(f)?),
                high: Box::new(high.map(f)?),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map(f)?),
                list: list
                    .into_iter()
                    .map(|e| e.map(f))
                    .collect::<DbResult<Vec<_>>>()?,
                negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.map(f)?),
                negated,
            },
            Expr::Func { name, args, star } => Expr::Func {
                name,
                args: args
                    .into_iter()
                    .map(|e| e.map(f))
                    .collect::<DbResult<Vec<_>>>()?,
                star,
            },
            leaf => leaf,
        };
        f(rewritten)
    }

    /// Splits a conjunction into its conjuncts: `a AND b AND c` → `[a, b, c]`.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary(BinOp::And, l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuilds a conjunction from conjuncts; `None` when the list is empty.
    pub fn conjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(
            exprs
                .into_iter()
                .fold(first, |acc, e| Expr::bin(BinOp::And, acc, e)),
        )
    }

    /// `true` if the expression contains no column references, subqueries, or
    /// aggregates — i.e. it can be evaluated once per statement.
    pub fn is_const(&self) -> bool {
        let mut constant = true;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::Name(_)
                    | Expr::Column(_)
                    | Expr::OuterColumn(_)
                    | Expr::Subquery(_)
                    | Expr::Exists(_)
                    | Expr::Func { .. }
            ) {
                constant = false;
            }
        });
        constant
    }
}

/// The environment an expression is evaluated in. Implemented by the
/// executor; tests use [`SimpleCtx`].
pub trait EvalContext {
    /// Value of column `i` of the current row.
    fn column(&self, i: usize) -> DbResult<Value>;
    /// Value of column `i` of the enclosing (correlated) row.
    fn outer_column(&self, i: usize) -> DbResult<Value>;
    /// Value of statement parameter `i`.
    fn param(&self, i: usize) -> DbResult<Value>;
    /// Runs scalar subquery slot `i` for the current row and returns its
    /// single value (`Null` when the subquery yields no row).
    fn subquery(&mut self, i: usize) -> DbResult<Value>;
    /// Runs subquery slot `i`, returning whether it yields at least one row.
    fn exists(&mut self, i: usize) -> DbResult<bool>;
}

/// A context with no columns or subqueries — for constant expressions —
/// or a plain row + params without correlation.
pub struct SimpleCtx<'a> {
    /// The current row.
    pub row: &'a [Value],
    /// Statement parameters.
    pub params: &'a [Value],
}

impl EvalContext for SimpleCtx<'_> {
    fn column(&self, i: usize) -> DbResult<Value> {
        self.row
            .get(i)
            .cloned()
            .ok_or_else(|| DbError::Eval(format!("column index {i} out of range")))
    }

    fn outer_column(&self, _i: usize) -> DbResult<Value> {
        Err(DbError::Eval("no outer row in this context".into()))
    }

    fn param(&self, i: usize) -> DbResult<Value> {
        self.params
            .get(i)
            .cloned()
            .ok_or_else(|| DbError::Eval(format!("parameter ?{} not supplied", i + 1)))
    }

    fn subquery(&mut self, _i: usize) -> DbResult<Value> {
        Err(DbError::Eval("no subqueries in this context".into()))
    }

    fn exists(&mut self, _i: usize) -> DbResult<bool> {
        Err(DbError::Eval("no subqueries in this context".into()))
    }
}

/// Three-valued boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn from_value(v: &Value) -> DbResult<Tri> {
        match v {
            Value::Null => Ok(Tri::Unknown),
            Value::Bool(true) => Ok(Tri::True),
            Value::Bool(false) => Ok(Tri::False),
            other => Err(DbError::Eval(format!(
                "expected a boolean condition, got {other}"
            ))),
        }
    }

    fn to_value(self) -> Value {
        match self {
            Tri::True => Value::Bool(true),
            Tri::False => Value::Bool(false),
            Tri::Unknown => Value::Null,
        }
    }
}

/// Evaluates `expr` in `ctx`.
pub fn eval(expr: &Expr, ctx: &mut dyn EvalContext) -> DbResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Name(n) => Err(DbError::Eval(format!(
            "unbound column name `{n}` reached evaluation"
        ))),
        Expr::Column(i) => ctx.column(*i),
        Expr::OuterColumn(i) => ctx.outer_column(*i),
        Expr::Param(i) => ctx.param(*i),
        Expr::Unary(op, e) => {
            let v = eval(e, ctx)?;
            match op {
                UnaryOp::Not => Ok(match Tri::from_value(&v)? {
                    Tri::True => Tri::False,
                    Tri::False => Tri::True,
                    Tri::Unknown => Tri::Unknown,
                }
                .to_value()),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(DbError::Eval(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Binary(op, l, r) => eval_binary(*op, l, r, ctx),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(v.as_text()?, p.as_text()?);
            Ok(Value::Bool(matched != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            let (Some(c1), Some(c2)) = (v.sql_cmp(&lo), v.sql_cmp(&hi)) else {
                return Ok(Value::Null);
            };
            let inside = c1 != Ordering::Less && c2 != Ordering::Greater;
            Ok(Value::Bool(inside != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, ctx)?;
                match v.sql_cmp(&w) {
                    Some(Ordering::Equal) => return Ok(Value::Bool(!negated)),
                    None if w.is_null() => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Func { name, args, .. } if name == "MULTIRANGE" && args.len() == 2 => {
            // Membership fallback for a `MULTIRANGE(col, batch)` predicate
            // the planner did not turn into a multi-range index scan: true
            // iff the column value falls inside any range of the batch.
            let v = eval(&args[0], ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let batch = eval(&args[1], ctx)?;
            let ranges = crate::value::decode_range_batch(batch.as_bytes()?)?;
            let inside = ranges.iter().any(|r| {
                let above_lo = r.lo.is_null()
                    || matches!(
                        (v.sql_cmp(&r.lo), r.lo_inclusive),
                        (Some(std::cmp::Ordering::Greater), _)
                            | (Some(std::cmp::Ordering::Equal), true)
                    );
                let below_hi = r.hi.is_null()
                    || matches!(
                        (v.sql_cmp(&r.hi), r.hi_inclusive),
                        (Some(std::cmp::Ordering::Less), _)
                            | (Some(std::cmp::Ordering::Equal), true)
                    );
                above_lo && below_hi
            });
            Ok(Value::Bool(inside))
        }
        Expr::Func { name, .. } => Err(DbError::Eval(format!(
            "function `{name}` is not valid in this position (aggregates \
             belong in SELECT with GROUP BY)"
        ))),
        Expr::Subquery(slot) => ctx.subquery(*slot),
        Expr::Exists(slot) => Ok(Value::Bool(ctx.exists(*slot)?)),
    }
}

fn eval_binary(op: BinOp, l: &Expr, r: &Expr, ctx: &mut dyn EvalContext) -> DbResult<Value> {
    // AND/OR need lazy three-valued handling.
    if matches!(op, BinOp::And | BinOp::Or) {
        let lv = Tri::from_value(&eval(l, ctx)?)?;
        // Short-circuit where sound.
        match (op, lv) {
            (BinOp::And, Tri::False) => return Ok(Value::Bool(false)),
            (BinOp::Or, Tri::True) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let rv = Tri::from_value(&eval(r, ctx)?)?;
        let out = match (op, lv, rv) {
            (BinOp::And, Tri::True, x) => x,
            (BinOp::And, Tri::Unknown, Tri::False) => Tri::False,
            (BinOp::And, Tri::Unknown, _) => Tri::Unknown,
            (BinOp::Or, Tri::False, x) => x,
            (BinOp::Or, Tri::Unknown, Tri::True) => Tri::True,
            (BinOp::Or, Tri::Unknown, _) => Tri::Unknown,
            _ => unreachable!("short-circuited above"),
        };
        return Ok(out.to_value());
    }
    let lv = eval(l, ctx)?;
    let rv = eval(r, ctx)?;
    match op {
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(ord) = lv.sql_cmp(&rv) else {
                // NULL comparison, or incomparable types: unknown for NULLs,
                // error for type mismatches.
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                return Err(DbError::Eval(format!("cannot compare {lv} with {rv}")));
            };
            let b = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!("outer arm admits only comparison ops"),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Null);
            }
            match (&lv, &rv) {
                (Value::Int(a), Value::Int(b)) => {
                    let a = *a;
                    let b = *b;
                    let out = match op {
                        BinOp::Add => a.checked_add(b),
                        BinOp::Sub => a.checked_sub(b),
                        BinOp::Mul => a.checked_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(DbError::Eval("division by zero".into()));
                            }
                            a.checked_div(b)
                        }
                        BinOp::Mod => {
                            if b == 0 {
                                return Err(DbError::Eval("modulo by zero".into()));
                            }
                            a.checked_rem(b)
                        }
                        _ => unreachable!("outer arm admits only arithmetic ops"),
                    };
                    out.map(Value::Int)
                        .ok_or_else(|| DbError::Eval(format!("integer overflow in {a} {op} {b}")))
                }
                _ => {
                    let a = lv.as_float()?;
                    let b = rv.as_float()?;
                    let out = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                return Err(DbError::Eval("division by zero".into()));
                            }
                            a / b
                        }
                        BinOp::Mod => a % b,
                        _ => unreachable!("outer arm admits only arithmetic ops"),
                    };
                    Ok(Value::Float(out))
                }
            }
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

/// SQL `LIKE` matching: `%` matches any run (including empty), `_` matches
/// exactly one character. Case-sensitive, over characters.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let p_rest = &p[1..];
                (0..=t.len()).any(|skip| rec(&t[skip..], p_rest))
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(e: &Expr) -> DbResult<Value> {
        eval(
            e,
            &mut SimpleCtx {
                row: &[],
                params: &[],
            },
        )
    }

    fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            ev(&Expr::bin(
                BinOp::Add,
                lit(Value::Int(2)),
                lit(Value::Int(3))
            ))
            .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            ev(&Expr::bin(
                BinOp::Div,
                lit(Value::Int(7)),
                lit(Value::Int(2))
            ))
            .unwrap(),
            Value::Int(3),
            "integer division truncates"
        );
        assert_eq!(
            ev(&Expr::bin(
                BinOp::Mul,
                lit(Value::Float(1.5)),
                lit(Value::Int(2))
            ))
            .unwrap(),
            Value::Float(3.0)
        );
        assert!(ev(&Expr::bin(
            BinOp::Div,
            lit(Value::Int(1)),
            lit(Value::Int(0))
        ))
        .is_err());
        assert!(ev(&Expr::bin(
            BinOp::Add,
            lit(Value::Int(i64::MAX)),
            lit(Value::Int(1))
        ))
        .is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            ev(&Expr::bin(BinOp::Add, lit(Value::Null), lit(Value::Int(1)))).unwrap(),
            Value::Null
        );
        assert_eq!(
            ev(&Expr::bin(BinOp::Eq, lit(Value::Null), lit(Value::Null))).unwrap(),
            Value::Null,
            "NULL = NULL is unknown"
        );
        assert_eq!(
            ev(&Expr::IsNull {
                expr: Box::new(lit(Value::Null)),
                negated: false
            })
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn three_valued_and_or() {
        let t = || lit(Value::Bool(true));
        let f = || lit(Value::Bool(false));
        let u = || lit(Value::Null);
        assert_eq!(
            ev(&Expr::bin(BinOp::And, u(), f())).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(ev(&Expr::bin(BinOp::And, u(), t())).unwrap(), Value::Null);
        assert_eq!(
            ev(&Expr::bin(BinOp::Or, u(), t())).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(ev(&Expr::bin(BinOp::Or, u(), f())).unwrap(), Value::Null);
        assert_eq!(
            ev(&Expr::Unary(UnaryOp::Not, Box::new(u()))).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn comparisons_mixed_numeric() {
        assert_eq!(
            ev(&Expr::bin(
                BinOp::Lt,
                lit(Value::Int(1)),
                lit(Value::Float(1.5))
            ))
            .unwrap(),
            Value::Bool(true)
        );
        assert!(
            ev(&Expr::bin(
                BinOp::Lt,
                lit(Value::Int(1)),
                lit(Value::text("x"))
            ))
            .is_err(),
            "type mismatch is an error, not unknown"
        );
    }

    #[test]
    fn between_and_in() {
        let between = Expr::Between {
            expr: Box::new(lit(Value::Int(5))),
            low: Box::new(lit(Value::Int(1))),
            high: Box::new(lit(Value::Int(10))),
            negated: false,
        };
        assert_eq!(ev(&between).unwrap(), Value::Bool(true));
        let not_in = Expr::InList {
            expr: Box::new(lit(Value::Int(4))),
            list: vec![lit(Value::Int(1)), lit(Value::Int(2))],
            negated: true,
        };
        assert_eq!(ev(&not_in).unwrap(), Value::Bool(true));
        let in_with_null = Expr::InList {
            expr: Box::new(lit(Value::Int(4))),
            list: vec![lit(Value::Int(1)), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(
            ev(&in_with_null).unwrap(),
            Value::Null,
            "unknown membership"
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("", "%"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("naïve", "na_ve"), "wildcards are per character");
    }

    #[test]
    fn conjunct_split_and_rebuild() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::And, lit(Value::Bool(true)), lit(Value::Bool(false))),
            lit(Value::Null),
        );
        let parts = e.clone().conjuncts();
        assert_eq!(parts.len(), 3);
        let back = Expr::conjoin(parts).unwrap();
        // Same evaluation result even if associativity differs.
        assert_eq!(ev(&back).unwrap(), ev(&e).unwrap());
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn columns_and_params() {
        let row = vec![Value::Int(10), Value::text("a")];
        let params = vec![Value::Int(3)];
        let mut ctx = SimpleCtx {
            row: &row,
            params: &params,
        };
        let e = Expr::bin(BinOp::Add, Expr::Column(0), Expr::Param(0));
        assert_eq!(eval(&e, &mut ctx).unwrap(), Value::Int(13));
        assert!(eval(&Expr::Column(9), &mut ctx).is_err());
        assert!(eval(&Expr::Param(9), &mut ctx).is_err());
        assert!(eval(&Expr::Name("x".into()), &mut ctx).is_err());
    }

    #[test]
    fn is_const_detection() {
        assert!(lit(Value::Int(1)).is_const());
        assert!(Expr::bin(BinOp::Add, lit(Value::Int(1)), Expr::Param(0)).is_const());
        assert!(!Expr::Column(0).is_const());
        assert!(!Expr::Name("a".into()).is_const());
    }
}
