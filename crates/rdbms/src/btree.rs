//! An in-memory B+tree over byte-string keys.
//!
//! Keys are order-preserving encodings produced by
//! [`crate::value::encode_key`]; values are packed row ids
//! (see [`crate::storage::RowId::pack`]). The tree supports point lookups,
//! ordered range scans in both directions, and full delete rebalancing
//! (borrow from siblings, then merge), so it behaves like a disk B+tree
//! without paying page-serialization costs in the experiments — the paper's
//! cost model differences come from *how many* index entries the encodings
//! touch, which this structure measures faithfully.
//!
//! Duplicate keys are not stored: the table layer makes non-unique index
//! keys unique by appending the row id to the key, the standard technique.

use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of entries (leaf) or children minus one (inner) per node.
const MAX_KEYS: usize = 64;
/// Minimum fill for non-root nodes.
const MIN_KEYS: usize = MAX_KEYS / 2;
/// Sentinel "no node".
const NIL: u32 = u32::MAX;
/// Leaves a fingered seek ([`BTree::range_from`]) may walk past before
/// falling back to a root descent — beyond this, the descent's
/// `O(log n)` beats the sibling walk.
const FINGER_WALK_LIMIT: usize = 4;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        vals: Vec<u64>,
        next: u32,
        prev: u32,
    },
    Inner {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
        keys: Vec<Vec<u8>>,
        children: Vec<u32>,
    },
    /// A node on the free list.
    Free,
}

/// Operation counters for one tree (see [`BTree::counters`]).
///
/// The counters are kept per tree (not globally) so concurrent databases —
/// e.g. tests running in parallel — never see each other's traffic. They use
/// relaxed atomics because lookups and range scans take `&self`, possibly
/// from several reader threads at once.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BTreeCounters {
    /// Root-to-leaf descents: point lookups, inserts, removes, and the
    /// initial positioning of every range scan.
    pub descents: u64,
    /// Range positionings that *avoided* a root-to-leaf descent by resuming
    /// from the previous range's finger ([`BTree::range_from`]). A batched
    /// multi-range statement does `descents + descent_reuses` positionings.
    pub descent_reuses: u64,
    /// Leaf nodes visited by range iterators (including the starting leaf).
    pub leaf_scans: u64,
    /// Node splits (leaf and inner) triggered by inserts.
    pub splits: u64,
}

impl BTreeCounters {
    /// Adds `other` into `self` (used to sum counters across many trees).
    pub fn merge(&mut self, other: &BTreeCounters) {
        self.descents += other.descents;
        self.descent_reuses += other.descent_reuses;
        self.leaf_scans += other.leaf_scans;
        self.splits += other.splits;
    }
}

/// The B+tree. See the module docs.
#[derive(Debug)]
pub struct BTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: u64,
    descents: AtomicU64,
    descent_reuses: AtomicU64,
    leaf_scans: AtomicU64,
    splits: AtomicU64,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for BTree {
    /// Deep copy for catalog copy-on-write: a published snapshot shares a
    /// table until a writer touches it, at which point the whole tree is
    /// cloned. Counters are carried over as fresh atomics so the copy's
    /// totals start where the original's were.
    fn clone(&self) -> Self {
        BTree {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            len: self.len,
            descents: AtomicU64::new(self.descents.load(Ordering::Relaxed)),
            descent_reuses: AtomicU64::new(self.descent_reuses.load(Ordering::Relaxed)),
            leaf_scans: AtomicU64::new(self.leaf_scans.load(Ordering::Relaxed)),
            splits: AtomicU64::new(self.splits.load(Ordering::Relaxed)),
        }
    }
}

impl BTree {
    /// An empty tree.
    pub fn new() -> Self {
        BTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: NIL,
                prev: NIL,
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
            descents: AtomicU64::new(0),
            descent_reuses: AtomicU64::new(0),
            leaf_scans: AtomicU64::new(0),
            splits: AtomicU64::new(0),
        }
    }

    /// Snapshot of this tree's operation counters. Counters reset with
    /// [`BTree::clear`] (the tree is rebuilt from scratch).
    pub fn counters(&self) -> BTreeCounters {
        BTreeCounters {
            descents: self.descents.load(Ordering::Relaxed),
            descent_reuses: self.descent_reuses.load(Ordering::Relaxed),
            leaf_scans: self.leaf_scans.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
        // Every bump marks one unit of tree work (a descent, a leaf-link
        // advance, a split); charge it against the governing scope, if any.
        // Iterators cannot return errors, so a tripped limit latches here
        // and surfaces at the caller's next fallible checkpoint.
        crate::governance::note_work(1);
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        *self = BTree::new();
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, id: u32) {
        self.nodes[id as usize] = Node::Free;
        self.free.push(id);
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        Self::bump(&self.descents);
        let _span = crate::trace::span("btree.descent");
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    cur = children[idx];
                }
                Node::Leaf { keys, vals, .. } => {
                    return keys
                        .binary_search_by(|k| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| vals[i]);
                }
                Node::Free => unreachable!("walked into a freed node"),
            }
        }
    }

    /// `true` if the key is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key -> val`. Returns the previous value if the key existed
    /// (in which case the value was replaced).
    pub fn insert(&mut self, key: &[u8], val: u64) -> Option<u64> {
        Self::bump(&self.descents);
        let _span = crate::trace::span("btree.descent");
        let (split, old) = self.insert_rec(self.root, key, val);
        if let Some((sep, right)) = split {
            let new_root = self.alloc(Node::Inner {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(
        &mut self,
        node: u32,
        key: &[u8],
        val: u64,
    ) -> (Option<(Vec<u8>, u32)>, Option<u64>) {
        match &mut self.nodes[node as usize] {
            Node::Leaf {
                keys, vals, next, ..
            } => {
                match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let old = vals[i];
                        vals[i] = val;
                        (None, Some(old))
                    }
                    Err(i) => {
                        keys.insert(i, key.to_vec());
                        vals.insert(i, val);
                        if keys.len() <= MAX_KEYS {
                            return (None, None);
                        }
                        // Split.
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0].clone();
                        let old_next = *next;
                        // The leaf borrow ends here; allocate the right sibling.
                        let right = self.alloc(Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                            next: old_next,
                            prev: node,
                        });
                        Self::bump(&self.splits);
                        // Re-borrow to fix the left leaf's next pointer.
                        if let Node::Leaf { next, .. } = &mut self.nodes[node as usize] {
                            *next = right;
                        }
                        if old_next != NIL {
                            if let Node::Leaf { prev, .. } = &mut self.nodes[old_next as usize] {
                                *prev = right;
                            }
                        }
                        (Some((sep, right)), None)
                    }
                }
            }
            Node::Inner { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[idx];
                let (split, old) = self.insert_rec(child, key, val);
                if let Some((sep, right)) = split {
                    let Node::Inner { keys, children } = &mut self.nodes[node as usize] else {
                        unreachable!()
                    };
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > MAX_KEYS {
                        // Split the inner node; the middle key moves up.
                        let mid = keys.len() / 2;
                        let promote = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the promoted key from the left
                        let right_children = children.split_off(mid + 1);
                        let right = self.alloc(Node::Inner {
                            keys: right_keys,
                            children: right_children,
                        });
                        Self::bump(&self.splits);
                        return (Some((promote, right)), old);
                    }
                }
                (None, old)
            }
            Node::Free => unreachable!("walked into a freed node"),
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        Self::bump(&self.descents);
        let _span = crate::trace::span("btree.descent");
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root inner node with a single child.
        if let Node::Inner { children, keys } = &self.nodes[self.root as usize] {
            if keys.is_empty() && children.len() == 1 {
                let child = children[0];
                let old_root = self.root;
                self.root = child;
                self.dealloc(old_root);
            }
        }
        removed
    }

    fn remove_rec(&mut self, node: u32, key: &[u8]) -> Option<u64> {
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, vals, .. } => {
                match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        keys.remove(i);
                        Some(vals.remove(i))
                    }
                    Err(_) => None,
                }
            }
            Node::Inner { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[idx];
                let removed = self.remove_rec(child, key)?;
                self.rebalance_child(node, idx);
                Some(removed)
            }
            Node::Free => unreachable!("walked into a freed node"),
        }
    }

    fn node_len(&self, id: u32) -> usize {
        match &self.nodes[id as usize] {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Inner { keys, .. } => keys.len(),
            Node::Free => unreachable!(),
        }
    }

    /// After a removal in `children[idx]` of inner node `parent`, restore the
    /// minimum-fill invariant by borrowing from a sibling or merging.
    fn rebalance_child(&mut self, parent: u32, idx: usize) {
        let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
            unreachable!()
        };
        let child = children[idx];
        if self.node_len(child) >= MIN_KEYS {
            return;
        }
        let n_children = {
            let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            children.len()
        };
        // Try borrowing from the left sibling.
        if idx > 0 {
            let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            let left = children[idx - 1];
            if self.node_len(left) > MIN_KEYS {
                self.borrow_from_left(parent, idx);
                return;
            }
        }
        // Try borrowing from the right sibling.
        if idx + 1 < n_children {
            let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            let right = children[idx + 1];
            if self.node_len(right) > MIN_KEYS {
                self.borrow_from_right(parent, idx);
                return;
            }
        }
        // Merge with a sibling.
        if idx > 0 {
            self.merge_children(parent, idx - 1);
        } else if idx + 1 < n_children {
            self.merge_children(parent, idx);
        }
    }

    /// Moves the last entry of `children[idx-1]` into `children[idx]`.
    fn borrow_from_left(&mut self, parent: u32, idx: usize) {
        let (left_id, child_id, sep_idx) = {
            let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            (children[idx - 1], children[idx], idx - 1)
        };
        let is_leaf = matches!(self.nodes[child_id as usize], Node::Leaf { .. });
        if is_leaf {
            let (k, v) = {
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[left_id as usize] else {
                    unreachable!()
                };
                (
                    keys.pop().expect("left has > MIN"),
                    vals.pop().expect("left has > MIN"),
                )
            };
            let new_sep = k.clone();
            {
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[child_id as usize] else {
                    unreachable!()
                };
                keys.insert(0, k);
                vals.insert(0, v);
            }
            let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[sep_idx] = new_sep;
        } else {
            // Rotate through the parent separator.
            let old_sep = {
                let Node::Inner { keys, .. } = &self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[sep_idx].clone()
            };
            let (k, c) = {
                let Node::Inner { keys, children } = &mut self.nodes[left_id as usize] else {
                    unreachable!()
                };
                (
                    keys.pop().expect("left has > MIN"),
                    children.pop().expect("left has > MIN"),
                )
            };
            {
                let Node::Inner { keys, children } = &mut self.nodes[child_id as usize] else {
                    unreachable!()
                };
                keys.insert(0, old_sep);
                children.insert(0, c);
            }
            let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[sep_idx] = k;
        }
    }

    /// Moves the first entry of `children[idx+1]` into `children[idx]`.
    fn borrow_from_right(&mut self, parent: u32, idx: usize) {
        let (child_id, right_id, sep_idx) = {
            let Node::Inner { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            (children[idx], children[idx + 1], idx)
        };
        let is_leaf = matches!(self.nodes[child_id as usize], Node::Leaf { .. });
        if is_leaf {
            let (k, v, new_sep) = {
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[right_id as usize] else {
                    unreachable!()
                };
                let k = keys.remove(0);
                let v = vals.remove(0);
                (k, v, keys[0].clone())
            };
            {
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[child_id as usize] else {
                    unreachable!()
                };
                keys.push(k);
                vals.push(v);
            }
            let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[sep_idx] = new_sep;
        } else {
            let old_sep = {
                let Node::Inner { keys, .. } = &self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[sep_idx].clone()
            };
            let (k, c) = {
                let Node::Inner { keys, children } = &mut self.nodes[right_id as usize] else {
                    unreachable!()
                };
                (keys.remove(0), children.remove(0))
            };
            {
                let Node::Inner { keys, children } = &mut self.nodes[child_id as usize] else {
                    unreachable!()
                };
                keys.push(old_sep);
                children.push(c);
            }
            let Node::Inner { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[sep_idx] = k;
        }
    }

    /// Merges `children[idx+1]` into `children[idx]` and drops the separator.
    fn merge_children(&mut self, parent: u32, idx: usize) {
        let (left_id, right_id, sep) = {
            let Node::Inner { keys, children } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            let left = children[idx];
            let right = children.remove(idx + 1);
            let sep = keys.remove(idx);
            (left, right, sep)
        };
        let right_node = std::mem::replace(&mut self.nodes[right_id as usize], Node::Free);
        self.free.push(right_id);
        match right_node {
            Node::Leaf {
                keys: rkeys,
                vals: rvals,
                next: rnext,
                ..
            } => {
                let Node::Leaf {
                    keys, vals, next, ..
                } = &mut self.nodes[left_id as usize]
                else {
                    unreachable!()
                };
                keys.extend(rkeys);
                vals.extend(rvals);
                *next = rnext;
                if rnext != NIL {
                    if let Node::Leaf { prev, .. } = &mut self.nodes[rnext as usize] {
                        *prev = left_id;
                    }
                }
            }
            Node::Inner {
                keys: rkeys,
                children: rchildren,
            } => {
                let Node::Inner { keys, children } = &mut self.nodes[left_id as usize] else {
                    unreachable!()
                };
                keys.push(sep);
                keys.extend(rkeys);
                children.extend(rchildren);
            }
            Node::Free => unreachable!(),
        }
    }

    /// Finds `(leaf, index)` of the first entry `>=`/`>` the bound, walking
    /// down from the root.
    fn seek_lower(&self, bound: Bound<&[u8]>) -> (u32, usize) {
        Self::bump(&self.descents);
        let _span = crate::trace::span("btree.descent");
        let key = match bound {
            Bound::Unbounded => {
                // Leftmost leaf.
                let mut cur = self.root;
                loop {
                    match &self.nodes[cur as usize] {
                        Node::Inner { children, .. } => cur = children[0],
                        Node::Leaf { .. } => return (cur, 0),
                        Node::Free => unreachable!(),
                    }
                }
            }
            Bound::Included(k) | Bound::Excluded(k) => k,
        };
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    cur = children[idx];
                }
                Node::Leaf { keys, .. } => {
                    let idx = match bound {
                        Bound::Included(k) => keys.partition_point(|x| x.as_slice() < k),
                        Bound::Excluded(k) => keys.partition_point(|x| x.as_slice() <= k),
                        Bound::Unbounded => 0,
                    };
                    return (cur, idx);
                }
                Node::Free => unreachable!(),
            }
        }
    }

    /// Ascending iterator over entries in `(lower, upper)` bounds.
    pub fn range(&self, lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> Range<'_> {
        let (leaf, idx) = self.seek_lower(lower);
        Self::bump(&self.leaf_scans);
        Range {
            tree: self,
            leaf,
            idx,
            done: false,
            upper: match upper {
                Bound::Unbounded => None,
                Bound::Included(k) => Some((k.to_vec(), true)),
                Bound::Excluded(k) => Some((k.to_vec(), false)),
            },
        }
    }

    /// Like [`BTree::range`], but tries to resume from `finger` — the
    /// position a previous ascending scan over this (unmodified) tree
    /// stopped at — by walking leaf sibling links instead of descending
    /// from the root. Falls back to a plain descent when the finger cannot
    /// prove itself valid for `lower` (target precedes it, the walk would
    /// exceed [`FINGER_WALK_LIMIT`] leaves, or the node id went stale).
    ///
    /// The batched multi-range executor calls this with the ascending
    /// disjoint ranges of one statement: each range after the first then
    /// costs a short sibling walk (`descent_reuses`) instead of a full
    /// root-to-leaf descent (`descents`).
    pub fn range_from(
        &self,
        finger: Option<Finger>,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> Range<'_> {
        if let Some(fg) = finger {
            if let Some((leaf, idx)) = self.seek_from(fg, lower) {
                Self::bump(&self.descent_reuses);
                Self::bump(&self.leaf_scans);
                return Range {
                    tree: self,
                    leaf,
                    idx,
                    done: false,
                    upper: match upper {
                        Bound::Unbounded => None,
                        Bound::Included(k) => Some((k.to_vec(), true)),
                        Bound::Excluded(k) => Some((k.to_vec(), false)),
                    },
                };
            }
        }
        self.range(lower, upper)
    }

    /// Finds `(leaf, index)` of the first entry satisfying `bound` by
    /// walking forward from `finger`, or `None` when the finger cannot be
    /// used (the caller then descends from the root).
    ///
    /// Self-validating: the position is accepted only if the entry
    /// immediately *before* the finger is excluded by the bound (so the
    /// first match provably cannot lie to its left), and a finger whose
    /// node id no longer names a leaf — the tree changed — is rejected
    /// rather than trusted.
    fn seek_from(&self, finger: Finger, bound: Bound<&[u8]>) -> Option<(u32, usize)> {
        // An unbounded lower targets the leftmost leaf; nothing to reuse.
        if matches!(bound, Bound::Unbounded) {
            return None;
        }
        let Some(Node::Leaf { keys, prev, .. }) = self.nodes.get(finger.leaf as usize) else {
            return None; // stale finger: node freed or repurposed
        };
        let idx = finger.idx.min(keys.len());
        // The nearest entry to the left of the finger position (possibly in
        // the previous leaf). Sorted order makes this one comparison
        // sufficient to prove every entry before the finger is excluded.
        let pred: Option<&[u8]> = if idx > 0 {
            Some(keys[idx - 1].as_slice())
        } else if *prev == NIL {
            None // beginning of the tree: trivially valid
        } else {
            match self.nodes.get(*prev as usize) {
                Some(Node::Leaf { keys: pkeys, .. }) => pkeys.last().map(|k| k.as_slice()),
                _ => return None,
            }
        };
        if let Some(p) = pred {
            let excluded = match bound {
                Bound::Included(k) => p < k,
                Bound::Excluded(k) => p <= k,
                Bound::Unbounded => unreachable!("handled above"),
            };
            if !excluded {
                return None;
            }
        }
        // Walk sibling links to the first entry satisfying the bound.
        let mut cur = finger.leaf;
        let mut steps = 0;
        loop {
            let Some(Node::Leaf { keys, next, .. }) = self.nodes.get(cur as usize) else {
                return None;
            };
            let pos = match bound {
                Bound::Included(k) => keys.partition_point(|x| x.as_slice() < k),
                Bound::Excluded(k) => keys.partition_point(|x| x.as_slice() <= k),
                Bound::Unbounded => 0,
            };
            if pos < keys.len() || *next == NIL {
                return Some((cur, pos));
            }
            steps += 1;
            if steps > FINGER_WALK_LIMIT {
                return None; // gap too wide: a root descent is cheaper
            }
            cur = *next;
        }
    }

    /// Descending iterator over entries in `(lower, upper)` bounds.
    pub fn range_rev(&self, lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> RangeRev<'_> {
        // Position one past the last entry within `upper`.
        let (mut leaf, mut idx) = match &upper {
            Bound::Unbounded => {
                Self::bump(&self.descents);
                let _span = crate::trace::span("btree.descent");
                let mut cur = self.root;
                loop {
                    match &self.nodes[cur as usize] {
                        Node::Inner { children, .. } => {
                            cur = *children.last().expect("inner node has children")
                        }
                        Node::Leaf { keys, .. } => break (cur, keys.len()),
                        Node::Free => unreachable!(),
                    }
                }
            }
            Bound::Included(k) => {
                let (leaf, idx) = self.seek_lower(Bound::Excluded(*k));
                (leaf, idx)
            }
            Bound::Excluded(k) => {
                let (leaf, idx) = self.seek_lower(Bound::Included(*k));
                (leaf, idx)
            }
        };
        // If idx == 0, step to the previous leaf.
        if idx == 0 {
            let prev = match &self.nodes[leaf as usize] {
                Node::Leaf { prev, .. } => *prev,
                _ => unreachable!(),
            };
            if prev == NIL {
                // Empty range: mark exhausted with leaf = NIL.
                leaf = NIL;
            } else {
                leaf = prev;
                idx = self.node_len(leaf);
            }
        }
        if leaf != NIL {
            Self::bump(&self.leaf_scans);
        }
        RangeRev {
            tree: self,
            leaf,
            idx,
            lower: match lower {
                Bound::Unbounded => None,
                Bound::Included(k) => Some((k.to_vec(), true)),
                Bound::Excluded(k) => Some((k.to_vec(), false)),
            },
        }
    }

    /// Iterator over all entries in key order.
    pub fn iter(&self) -> Range<'_> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(
            tree: &BTree,
            node: u32,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            is_root: bool,
        ) {
            match &tree.nodes[node as usize] {
                Node::Leaf { keys, vals, .. } => {
                    assert_eq!(keys.len(), vals.len());
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS.min(1), "leaf fill");
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "all leaves at equal depth"),
                    }
                }
                Node::Inner { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1);
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "inner keys sorted");
                    if !is_root {
                        assert!(
                            keys.len() >= MIN_KEYS,
                            "inner fill: {} < {MIN_KEYS}",
                            keys.len()
                        );
                    }
                    for &c in children {
                        walk(tree, c, depth + 1, leaf_depth, false);
                    }
                }
                Node::Free => panic!("live tree references a freed node"),
            }
        }
        let mut leaf_depth = None;
        walk(self, self.root, 0, &mut leaf_depth, true);
    }
}

/// An opaque resume position: the leaf/slot where an ascending scan
/// stopped, as returned by [`Range::finger`]. Feed it to
/// [`BTree::range_from`] to position the next (key-ordered later) range by
/// walking leaf links instead of re-descending from the root. Plain data —
/// it borrows nothing — and safe to hold across tree mutations: a finger
/// the tree can no longer validate degrades to a normal descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finger {
    leaf: u32,
    idx: usize,
}

/// Ascending range iterator. See [`BTree::range`].
pub struct Range<'a> {
    tree: &'a BTree,
    leaf: u32,
    idx: usize,
    /// Set when the upper bound stopped the scan — `leaf`/`idx` then hold
    /// the first out-of-range position, which [`Range::finger`] exposes
    /// for the next range to resume from.
    done: bool,
    upper: Option<(Vec<u8>, bool)>,
}

impl Range<'_> {
    /// The position this scan has reached, for [`BTree::range_from`] —
    /// `None` once the scan ran off the end of the tree (nothing follows,
    /// so there is nothing to resume from).
    pub fn finger(&self) -> Option<Finger> {
        if self.leaf == NIL {
            None
        } else {
            Some(Finger {
                leaf: self.leaf,
                idx: self.idx,
            })
        }
    }
}

impl<'a> Iterator for Range<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL || self.done {
                return None;
            }
            let Node::Leaf {
                keys, vals, next, ..
            } = &self.tree.nodes[self.leaf as usize]
            else {
                unreachable!()
            };
            if self.idx >= keys.len() {
                self.leaf = *next;
                self.idx = 0;
                if self.leaf != NIL {
                    BTree::bump(&self.tree.leaf_scans);
                }
                continue;
            }
            let key = keys[self.idx].as_slice();
            if let Some((upper, inclusive)) = &self.upper {
                let in_range = if *inclusive {
                    key <= upper.as_slice()
                } else {
                    key < upper.as_slice()
                };
                if !in_range {
                    // Keep leaf/idx: they are the finger the next
                    // key-ordered range resumes from.
                    self.done = true;
                    return None;
                }
            }
            let val = vals[self.idx];
            self.idx += 1;
            return Some((key, val));
        }
    }
}

/// Descending range iterator. See [`BTree::range_rev`].
pub struct RangeRev<'a> {
    tree: &'a BTree,
    leaf: u32,
    /// One past the next entry to yield.
    idx: usize,
    lower: Option<(Vec<u8>, bool)>,
}

impl<'a> Iterator for RangeRev<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let Node::Leaf {
                keys, vals, prev, ..
            } = &self.tree.nodes[self.leaf as usize]
            else {
                unreachable!()
            };
            if self.idx == 0 {
                self.leaf = *prev;
                if self.leaf != NIL {
                    self.idx = self.tree.node_len(self.leaf);
                    BTree::bump(&self.tree.leaf_scans);
                }
                continue;
            }
            let key = keys[self.idx - 1].as_slice();
            if let Some((lower, inclusive)) = &self.lower {
                let in_range = if *inclusive {
                    key >= lower.as_slice()
                } else {
                    key > lower.as_slice()
                };
                if !in_range {
                    self.leaf = NIL;
                    return None;
                }
            }
            let val = vals[self.idx - 1];
            self.idx -= 1;
            return Some((key, val));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::ops::Bound::{Excluded, Included, Unbounded};

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let mut t = BTree::new();
        assert_eq!(t.insert(&key(5), 50), None);
        assert_eq!(t.insert(&key(3), 30), None);
        assert_eq!(t.insert(&key(5), 55), Some(50), "replace returns old");
        assert_eq!(t.get(&key(5)), Some(55));
        assert_eq!(t.get(&key(3)), Some(30));
        assert_eq!(t.get(&key(4)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn splits_preserve_order_and_invariants() {
        let mut t = BTree::new();
        // Insert in adversarial (descending) order to force left-heavy splits.
        for i in (0..5000u64).rev() {
            t.insert(&key(i), i);
        }
        t.check_invariants();
        let all: Vec<u64> = t.iter().map(|(_, v)| v).collect();
        assert_eq!(all, (0..5000).collect::<Vec<u64>>());
    }

    #[test]
    fn range_bounds_semantics() {
        let mut t = BTree::new();
        for i in 0..100u64 {
            t.insert(&key(i * 2), i * 2); // even keys 0..198
        }
        let got: Vec<u64> = t
            .range(Included(&key(10)), Excluded(&key(20)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18]);
        let got: Vec<u64> = t
            .range(Excluded(&key(10)), Included(&key(20)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![12, 14, 16, 18, 20]);
        // Bounds between keys.
        let got: Vec<u64> = t
            .range(Included(&key(11)), Included(&key(15)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![12, 14]);
        // Empty range.
        assert_eq!(t.range(Included(&key(13)), Excluded(&key(14))).count(), 0);
    }

    #[test]
    fn fingered_ranges_match_plain_ranges_and_skip_descents() {
        let mut t = BTree::new();
        for i in 0..2000u64 {
            t.insert(&key(i), i);
        }
        let before = t.counters();
        // Three ascending adjacent/disjoint ranges, fingered.
        let ranges = [(100u64, 200u64), (200, 300), (340, 400)];
        let mut finger = None;
        let mut got = Vec::new();
        for (lo, hi) in ranges {
            let mut scan = t.range_from(finger.take(), Included(&key(lo)), Excluded(&key(hi)));
            got.extend(scan.by_ref().map(|(_, v)| v));
            finger = scan.finger();
        }
        let want: Vec<u64> = (100..300).chain(340..400).collect();
        assert_eq!(got, want);
        let after = t.counters();
        assert_eq!(
            after.descents - before.descents,
            1,
            "only the first range descends"
        );
        assert_eq!(after.descent_reuses - before.descent_reuses, 2);
    }

    #[test]
    fn finger_falls_back_when_target_precedes_it() {
        let mut t = BTree::new();
        for i in 0..2000u64 {
            t.insert(&key(i), i);
        }
        let mut scan = t.range(Included(&key(1000)), Excluded(&key(1010)));
        assert_eq!(scan.by_ref().count(), 10);
        let finger = scan.finger();
        assert!(finger.is_some());
        let before = t.counters();
        // A range *before* the finger must still be answered correctly —
        // via a fresh descent, not a bogus reuse.
        let got: Vec<u64> = t
            .range_from(finger, Included(&key(5)), Excluded(&key(8)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![5, 6, 7]);
        let after = t.counters();
        assert_eq!(after.descents - before.descents, 1);
        assert_eq!(after.descent_reuses, before.descent_reuses);
    }

    #[test]
    fn finger_survives_wide_gaps_by_descending() {
        let mut t = BTree::new();
        for i in 0..20_000u64 {
            t.insert(&key(i), i);
        }
        let mut scan = t.range(Included(&key(0)), Excluded(&key(5)));
        assert_eq!(scan.by_ref().count(), 5);
        let finger = scan.finger();
        let before = t.counters();
        // The next range is thousands of keys away — farther than the
        // bounded sibling walk — so the seek falls back to a descent.
        let got: Vec<u64> = t
            .range_from(finger, Included(&key(19_990)), Unbounded)
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, (19_990..20_000).collect::<Vec<u64>>());
        let after = t.counters();
        assert_eq!(after.descents - before.descents, 1);
        assert_eq!(after.descent_reuses, before.descent_reuses);
    }

    #[test]
    fn stale_finger_after_mutation_degrades_to_descent() {
        let mut t = BTree::new();
        for i in 0..500u64 {
            t.insert(&key(i * 2), i);
        }
        let mut scan = t.range(Included(&key(100)), Excluded(&key(120)));
        let _ = scan.by_ref().count();
        let finger = scan.finger();
        // Mutate heavily: deletions free and repurpose nodes.
        for i in 0..400u64 {
            t.remove(&key(i * 2));
        }
        t.check_invariants();
        // The stale finger must never produce wrong rows.
        let got: Vec<u64> = t
            .range_from(finger, Included(&key(800)), Excluded(&key(820)))
            .map(|(_, v)| v)
            .collect();
        let want: Vec<u64> = t
            .range(Included(&key(800)), Excluded(&key(820)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn finger_is_none_after_running_off_the_tree_end() {
        let mut t = BTree::new();
        for i in 0..10u64 {
            t.insert(&key(i), i);
        }
        let mut scan = t.range(Included(&key(5)), Unbounded);
        assert_eq!(scan.by_ref().count(), 5);
        assert!(scan.finger().is_none(), "exhausted scan has no position");
        // And range_from with None simply descends.
        let got: Vec<u64> = t
            .range_from(None, Included(&key(2)), Excluded(&key(4)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn reverse_range_matches_forward() {
        let mut t = BTree::new();
        for i in 0..1000u64 {
            t.insert(&key(i * 3), i);
        }
        let fwd: Vec<u64> = t
            .range(Included(&key(100)), Excluded(&key(2000)))
            .map(|(_, v)| v)
            .collect();
        let mut rev: Vec<u64> = t
            .range_rev(Included(&key(100)), Excluded(&key(2000)))
            .map(|(_, v)| v)
            .collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        // Unbounded both sides.
        let mut all_rev: Vec<u64> = t.range_rev(Unbounded, Unbounded).map(|(_, v)| v).collect();
        all_rev.reverse();
        assert_eq!(all_rev, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn delete_with_rebalancing() {
        let mut t = BTree::new();
        let n = 3000u64;
        for i in 0..n {
            t.insert(&key(i), i);
        }
        // Remove the middle half, checking invariants periodically.
        for i in n / 4..3 * n / 4 {
            assert_eq!(t.remove(&key(i)), Some(i));
            if i % 97 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), n / 2);
        let got: Vec<u64> = t.iter().map(|(_, v)| v).collect();
        let expect: Vec<u64> = (0..n / 4).chain(3 * n / 4..n).collect();
        assert_eq!(got, expect);
        // Remove everything.
        for i in (0..n / 4).chain(3 * n / 4..n) {
            assert_eq!(t.remove(&key(i)), Some(i));
        }
        assert!(t.is_empty());
        t.check_invariants();
        assert_eq!(t.remove(&key(0)), None);
    }

    #[test]
    fn model_check_against_btreemap() {
        // Deterministic pseudo-random workload vs std BTreeMap.
        let mut t = BTree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..20_000 {
            let k = key(rng() % 500);
            match rng() % 3 {
                0 | 1 => {
                    let v = rng();
                    assert_eq!(t.insert(&k, v), model.insert(k.clone(), v), "step {step}");
                }
                _ => {
                    assert_eq!(t.remove(&k), model.remove(&k), "step {step}");
                }
            }
            if step % 2500 == 0 {
                t.check_invariants();
                let got: Vec<(Vec<u8>, u64)> = t.iter().map(|(k, v)| (k.to_vec(), v)).collect();
                let expect: Vec<(Vec<u8>, u64)> =
                    model.iter().map(|(k, v)| (k.clone(), *v)).collect();
                assert_eq!(got, expect, "step {step}");
            }
        }
        assert_eq!(t.len(), model.len() as u64);
    }

    #[test]
    fn variable_length_keys_prefix_scan() {
        let mut t = BTree::new();
        for k in ["a", "ab", "abc", "abd", "ac", "b", "ba"] {
            t.insert(k.as_bytes(), k.len() as u64);
        }
        // All keys with prefix "ab": range ["ab", "ac").
        let got: Vec<Vec<u8>> = t
            .range(Included(b"ab".as_slice()), Excluded(b"ac".as_slice()))
            .map(|(k, _)| k.to_vec())
            .collect();
        assert_eq!(got, vec![b"ab".to_vec(), b"abc".to_vec(), b"abd".to_vec()]);
    }

    #[test]
    fn empty_tree_edge_cases() {
        let t = BTree::new();
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.range_rev(Unbounded, Unbounded).count(), 0);
        assert_eq!(
            t.range(Included(b"a".as_slice()), Excluded(b"z".as_slice()))
                .count(),
            0
        );
    }
}
