//! Structured hierarchical tracing across every engine layer.
//!
//! A *span* marks one timed region of a statement's life — store call,
//! XPath translation, plan-cache lookup, planning, an executor operator,
//! a B+tree descent, a pager page access, a WAL commit. Spans nest on a
//! per-thread stack, so a finished span knows its full ancestry
//! (`store.xpath;translate;statement;op.scan;btree.descent`), its depth,
//! and its self time (inclusive time minus time spent in child spans).
//!
//! Collection is process-global and off by default. While disabled,
//! [`span`] costs one relaxed atomic load and a branch — the instrumented
//! hot paths (B+tree descents, page accesses) pay essentially nothing.
//! While enabled, finished spans are buffered thread-locally and flushed
//! into a bounded global ring buffer whenever a thread's span stack
//! empties (i.e. once per top-level span, typically once per statement),
//! so tracing itself does not serialize concurrent readers.
//!
//! The ring exports two interchange formats:
//!
//! * [`to_chrome_json`] — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto), one complete (`"ph":"X"`) event per span;
//! * [`to_collapsed`] — flamegraph-collapsed stacks (`a;b;c <self_ns>`),
//!   ready for `flamegraph.pl` / speedscope.
//!
//! [`render_tree`] additionally renders a set of events as an indented
//! span tree with aggregated counts and durations — this is what
//! `EXPLAIN ANALYZE` and the XPath diagnostics surface print.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Upper bound on buffered finished spans. The ring keeps the most recent
/// events and evicts the oldest, so a long traced run stays bounded.
pub const RING_CAP: usize = 1 << 16;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (`statement`, `op.scan`, `btree.descent`, …).
    pub name: &'static str,
    /// Optional free-form annotation (truncated SQL text, operator detail).
    pub detail: String,
    /// Stable small id of the recording thread.
    pub tid: u64,
    /// Nesting depth at the time the span was open (0 = top level).
    pub depth: u16,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Inclusive duration (children included).
    pub dur_ns: u64,
    /// Self time: `dur_ns` minus time spent inside child spans.
    pub self_ns: u64,
    /// Full ancestry path, `;`-joined (`store.xpath;translate;statement`).
    pub path: String,
}

/// An open span on the thread-local stack.
struct OpenSpan {
    name: &'static str,
    detail: String,
    start_ns: u64,
    /// Nanoseconds consumed by already-closed direct children.
    child_ns: u64,
    path: String,
}

struct LocalBuf {
    tid: u64,
    stack: Vec<OpenSpan>,
    done: Vec<TraceEvent>,
}

/// The effective collection flag — the only thing the hot path reads.
/// Kept equal to `USER_ENABLED || CAPTURES > 0`.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// What the user last asked for via [`set_enabled`].
static USER_ENABLED: AtomicBool = AtomicBool::new(false);
/// Live [`capture`] scopes; each force-enables collection for its extent.
static CAPTURES: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use).
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The global ring of finished spans. A plain mutex (not a [`crate::latch`]
/// wrapper): the trace layer cannot meta-account its own contention, and
/// flushes are amortized to once per top-level span.
fn ring() -> &'static Mutex<VecDeque<TraceEvent>> {
    static RING: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        done: Vec::new(),
    });
}

/// Whether span collection is on. A single relaxed load — callers consult
/// it on every instrumented operation.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span collection on or off (off by default). Turning it off does
/// not clear already-collected events; see [`clear`]. A live [`capture`]
/// scope keeps collection on regardless.
pub fn set_enabled(on: bool) {
    USER_ENABLED.store(on, Ordering::Relaxed);
    ENABLED.store(
        on || CAPTURES.load(Ordering::Relaxed) != 0,
        Ordering::Relaxed,
    );
}

/// Discards all collected events (the current thread's buffer and the
/// global ring). Other threads' unflushed buffers drain on their next
/// top-level span close.
pub fn clear() {
    LOCAL.with(|l| l.borrow_mut().done.clear());
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// A guard for one span: records itself when dropped. Obtained from
/// [`span`] / [`span_with`]; a guard created while tracing was disabled is
/// inert.
#[derive(Debug)]
#[must_use = "a span guard records on drop; binding it to `_` ends it immediately"]
pub struct Span {
    armed: bool,
}

/// Opens a span. While tracing is disabled this is one relaxed load and a
/// branch; the returned guard is inert.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    push(name, String::new());
    Span { armed: true }
}

/// Opens a span with a lazily-computed annotation (the closure runs only
/// when tracing is enabled).
#[inline]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    push(name, detail());
    Span { armed: true }
}

fn push(name: &'static str, detail: String) {
    let start_ns = now_ns();
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        let path = match l.stack.last() {
            Some(parent) => format!("{};{}", parent.path, name),
            None => name.to_string(),
        };
        l.stack.push(OpenSpan {
            name,
            detail,
            start_ns,
            child_ns: 0,
            path,
        });
    });
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = now_ns();
        LOCAL.with(|l| {
            let l = &mut *l.borrow_mut();
            // The stack can only be empty if `clear`/drain raced a live
            // guard on another path; dropping the record beats panicking.
            let Some(open) = l.stack.pop() else { return };
            let dur_ns = end_ns.saturating_sub(open.start_ns);
            if let Some(parent) = l.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            l.done.push(TraceEvent {
                name: open.name,
                detail: open.detail,
                tid: l.tid,
                depth: l.stack.len() as u16,
                start_ns: open.start_ns,
                dur_ns,
                self_ns: dur_ns.saturating_sub(open.child_ns),
                path: open.path,
            });
            if l.stack.is_empty() {
                flush_locked(&mut l.done);
            }
        });
    }
}

/// Moves a thread's finished events into the global ring, evicting the
/// oldest past [`RING_CAP`].
fn flush_locked(done: &mut Vec<TraceEvent>) {
    if done.is_empty() {
        return;
    }
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    for ev in done.drain(..) {
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(ev);
    }
}

/// Drains every collected event (current thread's buffer flushed first),
/// oldest first. Events buffered by *other* threads mid-span are not
/// visible until their stacks unwind.
pub fn drain() -> Vec<TraceEvent> {
    LOCAL.with(|l| flush_locked(&mut l.borrow_mut().done));
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect()
}

/// Runs `f` with tracing force-enabled and returns the spans the *current
/// thread* recorded inside it (they also stay in the global ring). The
/// user-configured enablement is restored once the last overlapping
/// capture (any thread) exits. This is how `EXPLAIN ANALYZE` and the
/// diagnostics APIs get a statement-scoped span tree without the caller
/// configuring tracing.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
    CAPTURES.fetch_add(1, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    let mark = now_ns();
    let tid = LOCAL.with(|l| l.borrow().tid);
    let result = f();
    if CAPTURES.fetch_sub(1, Ordering::Relaxed) == 1 {
        ENABLED.store(USER_ENABLED.load(Ordering::Relaxed), Ordering::Relaxed);
    }
    let mine = |e: &TraceEvent| e.tid == tid && e.start_ns >= mark;
    // Spans closed under an enclosing open span sit in the local buffer;
    // spans whose stack emptied were flushed to the ring. Collect both.
    let mut events: Vec<TraceEvent> = ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .filter(|e| mine(e))
        .cloned()
        .collect();
    LOCAL.with(|l| {
        events.extend(l.borrow().done.iter().filter(|e| mine(e)).cloned());
    });
    events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
    (result, events)
}

fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form; timestamps in microseconds).
/// The output is strict RFC 8259 JSON.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"ordxml\",\"ph\":\"X\",\"ts\":{}.{:03},\
             \"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            esc_json(e.name),
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
            e.tid,
        ));
        if !e.detail.is_empty() {
            out.push_str(&format!(
                ",\"args\":{{\"detail\":\"{}\"}}",
                esc_json(&e.detail)
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Renders events as flamegraph-collapsed stacks: one line per distinct
/// ancestry path, `path <total self nanoseconds>`, sorted by path.
pub fn to_collapsed(events: &[TraceEvent]) -> String {
    let mut by_path: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in events {
        *by_path.entry(e.path.as_str()).or_insert(0) += e.self_ns;
    }
    let mut out = String::new();
    for (path, self_ns) in by_path {
        out.push_str(&format!("{path} {self_ns}\n"));
    }
    out
}

/// Renders events as an indented span tree. Spans with the same ancestry
/// path are aggregated (count × total inclusive time); branches are ordered
/// by first occurrence. Multi-thread event sets interleave by path, which
/// is fine for the single-statement trees this feeds.
pub fn render_tree(events: &[TraceEvent]) -> Vec<String> {
    struct Agg {
        count: u64,
        total_ns: u64,
        first_start: u64,
        depth: u16,
        name: &'static str,
        detail: String,
    }
    let mut by_path: std::collections::HashMap<&str, Agg> = std::collections::HashMap::new();
    for e in events {
        let a = by_path.entry(e.path.as_str()).or_insert(Agg {
            count: 0,
            total_ns: 0,
            first_start: e.start_ns,
            depth: e.depth,
            name: e.name,
            detail: e.detail.clone(),
        });
        a.count += 1;
        a.total_ns += e.dur_ns;
        a.first_start = a.first_start.min(e.start_ns);
    }
    let mut ordered: Vec<(&str, Agg)> = by_path.into_iter().collect();
    // A parent starts no later than its children; at equal starts the
    // shallower span is the ancestor.
    ordered.sort_by_key(|(_, a)| (a.first_start, a.depth));
    // Captured sets can start below the thread's root (e.g. inside an
    // enclosing `statement` span) — indent relative to the shallowest.
    let base = ordered.iter().map(|(_, a)| a.depth).min().unwrap_or(0);
    ordered
        .into_iter()
        .map(|(_, a)| {
            let indent = "  ".repeat((a.depth - base) as usize);
            let ms = a.total_ns as f64 / 1e6;
            let detail = if a.detail.is_empty() {
                String::new()
            } else {
                format!(" [{}]", a.detail)
            };
            if a.count > 1 {
                format!("{indent}{} x{} ({ms:.3}ms total){detail}", a.name, a.count)
            } else {
                format!("{indent}{} ({ms:.3}ms){detail}", a.name)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global flag or drain the ring.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        set_enabled(false);
        clear();
        {
            let _a = span("test.disabled.outer");
            let _b = span_with("test.disabled.inner", || "never built".into());
        }
        assert!(
            drain().iter().all(|e| !e.name.starts_with("test.disabled")),
            "disabled tracing must not collect spans"
        );
    }

    #[test]
    fn nested_spans_carry_paths_depths_and_self_time() {
        let _g = guard();
        clear();
        set_enabled(true);
        {
            let _a = span("test.a");
            {
                let _b = span_with("test.b", || "detail".into());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let events = drain();
        let a = events.iter().find(|e| e.name == "test.a").unwrap();
        let b = events.iter().find(|e| e.name == "test.b").unwrap();
        assert_eq!(a.path, "test.a");
        assert_eq!(b.path, "test.a;test.b");
        assert_eq!(a.depth, 0);
        assert_eq!(b.depth, 1);
        assert_eq!(b.detail, "detail");
        assert!(a.dur_ns >= b.dur_ns, "parent includes child");
        assert!(
            a.self_ns <= a.dur_ns.saturating_sub(b.dur_ns) + 1_000_000,
            "self time excludes the child"
        );
    }

    #[test]
    fn capture_returns_statement_scoped_events() {
        let _g = guard();
        set_enabled(false);
        clear();
        let (value, events) = capture(|| {
            let _a = span("test.cap");
            {
                let _b = span("test.cap.child");
            }
            42
        });
        assert_eq!(value, 42);
        assert!(!enabled(), "prior disabled state restored");
        assert!(events.iter().any(|e| e.name == "test.cap"));
        assert!(events.iter().any(|e| e.path == "test.cap;test.cap.child"));
    }

    #[test]
    fn chrome_json_and_collapsed_round_trip() {
        let _g = guard();
        clear();
        set_enabled(true);
        {
            let _a = span_with("test.fmt", || "quote \" and \\ and \n".into());
            let _b = span("test.fmt.child");
        }
        set_enabled(false);
        let events: Vec<TraceEvent> = drain()
            .into_iter()
            .filter(|e| e.name.starts_with("test.fmt"))
            .collect();
        assert_eq!(events.len(), 2);
        let json = to_chrome_json(&events);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\" and \\\\ and \\n"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let collapsed = to_collapsed(&events);
        assert!(
            collapsed.contains("test.fmt;test.fmt.child "),
            "{collapsed}"
        );
        let tree = render_tree(&events);
        assert_eq!(tree.len(), 2, "{tree:?}");
        assert!(tree[0].starts_with("test.fmt ("));
        assert!(tree[1].starts_with("  test.fmt.child ("));
    }

    #[test]
    fn ring_is_bounded() {
        let _g = guard();
        clear();
        set_enabled(true);
        for _ in 0..(RING_CAP + 64) {
            let _s = span("test.ring");
        }
        set_enabled(false);
        let events = drain();
        assert!(events.len() <= RING_CAP);
        assert!(events.len() >= RING_CAP.min(64), "recent events retained");
    }
}
