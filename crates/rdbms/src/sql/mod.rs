//! SQL front-end: lexer, AST, parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{ColumnSpec, OrderItem, ParsedStmt, SelectItem, SelectStmt, Stmt, TableRef};
pub use parser::parse;
