//! SQL lexer.

use crate::error::{DbError, DbResult};

/// A lexed token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the token in the SQL text.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized by the parser from `Ident`
/// (case-insensitively), so new keywords never break identifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (quotes removed, escapes resolved).
    Str(String),
    /// A hex blob literal: `X'0A1B'`.
    Blob(Vec<u8>),
    /// A `?` parameter placeholder.
    Param,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

/// Lexes `input` into tokens (ending with `Eof`).
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let start = pos;
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                pos += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                pos += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                pos += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                pos += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                pos += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                pos += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                pos += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                pos += 1;
            }
            b'%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset: start,
                });
                pos += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                pos += 1;
            }
            b'?' => {
                tokens.push(Token {
                    kind: TokenKind::Param,
                    offset: start,
                });
                pos += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                pos += 1;
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    offset: start,
                });
                pos += 2;
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    pos += 2;
                }
                Some(b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    pos += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            b'\'' => {
                // String literal; '' escapes a quote.
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None => return Err(DbError::parse(start, "unterminated string literal")),
                        Some(b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                            s.push('\'');
                            pos += 2;
                        }
                        Some(b'\'') => {
                            pos += 1;
                            break;
                        }
                        Some(&c) if c < 0x80 => {
                            s.push(c as char);
                            pos += 1;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8: copy the full sequence.
                            let end = (pos + 1..bytes.len())
                                .find(|&i| bytes[i] & 0xC0 != 0x80)
                                .unwrap_or(bytes.len());
                            s.push_str(std::str::from_utf8(&bytes[pos..end]).map_err(|_| {
                                DbError::parse(pos, "invalid UTF-8 in string literal")
                            })?);
                            pos = end;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'X' | b'x' if bytes.get(pos + 1) == Some(&b'\'') => {
                // Hex blob literal.
                pos += 2;
                let hex_start = pos;
                while pos < bytes.len() && bytes[pos] != b'\'' {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(DbError::parse(start, "unterminated blob literal"));
                }
                let hex = &input[hex_start..pos];
                pos += 1;
                if !hex.len().is_multiple_of(2) {
                    return Err(DbError::parse(
                        start,
                        "blob literal needs an even number of hex digits",
                    ));
                }
                let blob = (0..hex.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
                    .collect::<Result<Vec<u8>, _>>()
                    .map_err(|_| DbError::parse(start, "invalid hex digit in blob literal"))?;
                tokens.push(Token {
                    kind: TokenKind::Blob(blob),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let mut end = pos;
                let mut is_float = false;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end < bytes.len()
                    && bytes[end] == b'.'
                    && bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    end += 1;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < bytes.len() && (bytes[end] | 0x20) == b'e' {
                    let mut e = end + 1;
                    if e < bytes.len() && (bytes[e] == b'+' || bytes[e] == b'-') {
                        e += 1;
                    }
                    if e < bytes.len() && bytes[e].is_ascii_digit() {
                        is_float = true;
                        end = e;
                        while end < bytes.len() && bytes[end].is_ascii_digit() {
                            end += 1;
                        }
                    }
                }
                let text = &input[pos..end];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| DbError::parse(start, "bad float literal"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| DbError::parse(start, "integer literal out of range"))?,
                    )
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                pos = end;
            }
            b'"' => {
                // Quoted identifier.
                pos += 1;
                let id_start = pos;
                while pos < bytes.len() && bytes[pos] != b'"' {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(DbError::parse(start, "unterminated quoted identifier"));
                }
                let id = input[id_start..pos].to_string();
                pos += 1;
                tokens.push(Token {
                    kind: TokenKind::Ident(id),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = pos;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[pos..end].to_string()),
                    offset: start,
                });
                pos = end;
            }
            c => {
                return Err(DbError::parse(
                    start,
                    format!("unexpected character `{}`", c as char),
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT a, b FROM t WHERE a >= 10;"),
            vec![
                Ident("SELECT".into()),
                Ident("a".into()),
                Comma,
                Ident("b".into()),
                Ident("FROM".into()),
                Ident("t".into()),
                Ident("WHERE".into()),
                Ident("a".into()),
                Ge,
                Int(10),
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn string_escapes_and_unicode() {
        assert_eq!(
            kinds("'it''s' 'héllo'"),
            vec![
                TokenKind::Str("it's".into()),
                TokenKind::Str("héllo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 1.5e-2 7"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.015),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![Eq, Ne, Ne, Lt, Le, Gt, Ge, Eof]
        );
    }

    #[test]
    fn blob_literals() {
        assert_eq!(
            kinds("X'0a1B'"),
            vec![TokenKind::Blob(vec![0x0A, 0x1B]), TokenKind::Eof]
        );
        assert!(lex("X'0'").is_err());
        assert!(lex("X'zz'").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment\n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn params_and_quoted_identifiers() {
        assert_eq!(
            kinds("? \"Mixed Case\""),
            vec![
                TokenKind::Param,
                TokenKind::Ident("Mixed Case".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("a @ b").unwrap_err();
        match err {
            DbError::Parse { offset, .. } => assert_eq!(offset, 2),
            other => panic!("{other}"),
        }
    }
}
