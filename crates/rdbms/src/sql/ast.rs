//! SQL abstract syntax.
//!
//! Scalar subqueries are *flattened out* of [`crate::expr::Expr`]: the parser
//! collects every subquery of a statement into one side table
//! ([`ParsedStmt::subqueries`]) and leaves `Expr::Subquery(slot)` /
//! `Expr::Exists(slot)` references behind. The planner plans each slot into a
//! subplan. This keeps `Expr` free of a circular dependency on the statement
//! types.

use crate::expr::Expr;
use crate::value::DataType;

/// A parsed statement plus the scalar subqueries hoisted out of its
/// expressions (slot `i` is referenced by `Expr::Subquery(i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedStmt {
    /// The statement itself.
    pub stmt: Stmt,
    /// Hoisted subqueries, indexed by `Expr::Subquery`/`Expr::Exists` slot.
    pub subqueries: Vec<SelectStmt>,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `EXPLAIN [ANALYZE] stmt` — render (and with `ANALYZE`, execute and
    /// profile) the plan of the wrapped statement.
    Explain {
        /// `true` for `EXPLAIN ANALYZE`: execute the statement and annotate
        /// the plan with per-operator row counts and timings.
        analyze: bool,
        /// The statement being explained.
        inner: Box<Stmt>,
    },
    /// `CREATE TABLE name (columns..., [PRIMARY KEY (cols)])`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnSpec>,
        /// Table-level primary-key column names (empty if inline or none).
        primary_key: Vec<String>,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (cols)`.
    CreateIndex {
        /// Index name (unique across the database).
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column names, in key order.
        columns: Vec<String>,
        /// Whether the key must be unique.
        unique: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the error when the table does not exist.
        if_exists: bool,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), ...`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, or `None` for full-row inserts.
        columns: Option<Vec<String>>,
        /// One expression list per row.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// A `SELECT` query.
    Select(SelectStmt),
}

/// A column in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Whether `NULL` is storable (`NOT NULL` absent).
    pub nullable: bool,
    /// Set by an inline `PRIMARY KEY` on the column.
    pub inline_pk: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` tables, in join order.
    pub from: Vec<TableRef>,
    /// `WHERE` filter.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` (constant expression).
    pub limit: Option<Expr>,
    /// `OFFSET` (constant expression).
    pub offset: Option<Expr>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `alias.*`
    QualifiedStar(String),
    /// An expression with an optional output alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A table reference in `FROM` (base tables only; derived tables are out of
/// scope for the translation workload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias, defaulting to the table name.
    pub alias: String,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// `DESC`.
    pub desc: bool,
}
