//! Recursive-descent SQL parser with precedence climbing for expressions.

use super::ast::*;
use super::lexer::{lex, Token, TokenKind};
use crate::error::{DbError, DbResult};
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::value::{DataType, Value};

/// Parses one SQL statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> DbResult<ParsedStmt> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        subqueries: Vec::new(),
        next_param: 0,
    };
    let stmt = p.parse_stmt()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_kind(TokenKind::Eof, "end of statement")?;
    Ok(ParsedStmt {
        stmt,
        subqueries: p.subqueries,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    subqueries: Vec<SelectStmt>,
    /// Next `?` parameter index (numbered by occurrence order).
    next_param: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn err<T>(&self, msg: impl Into<String>) -> DbResult<T> {
        Err(DbError::parse(self.offset(), msg))
    }

    /// `true` (and consumes) if the next token is the keyword `kw`
    /// (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: TokenKind, what: &str) -> DbResult<()> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.pos += 1;
                Ok(s)
            }
            _ => self.err("expected an identifier"),
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn parse_stmt(&mut self) -> DbResult<Stmt> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            let inner = self.parse_stmt()?;
            if matches!(inner, Stmt::Explain { .. }) {
                return self.err("EXPLAIN cannot be nested");
            }
            return Ok(Stmt::Explain {
                analyze,
                inner: Box::new(inner),
            });
        }
        if self.peek_kw("SELECT") {
            return Ok(Stmt::Select(self.parse_select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.parse_create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                return self.parse_create_index(unique);
            }
            return self.err("expected TABLE or [UNIQUE] INDEX after CREATE");
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Delete {
                table,
                where_clause,
            });
        }
        self.err("expected a statement (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP)")
    }

    fn parse_data_type(&mut self) -> DbResult<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" => {
                // Optional length, ignored.
                if self.eat_kind(&TokenKind::LParen) {
                    self.bump();
                    self.expect_kind(TokenKind::RParen, "`)`")?;
                }
                DataType::Text
            }
            "DOUBLE" => {
                self.eat_kw("PRECISION");
                DataType::Float
            }
            "FLOAT" | "REAL" => DataType::Float,
            "BOOLEAN" | "BOOL" => DataType::Bool,
            "BLOB" | "BYTES" | "BINARY" | "VARBINARY" => DataType::Bytes,
            other => return self.err(format!("unknown type `{other}`")),
        };
        Ok(ty)
    }

    fn parse_create_table(&mut self) -> DbResult<Stmt> {
        let name = self.ident()?;
        self.expect_kind(TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.peek_kw("PRIMARY") {
                self.bump();
                self.expect_kw("KEY")?;
                self.expect_kind(TokenKind::LParen, "`(`")?;
                if !primary_key.is_empty() {
                    return self.err("multiple PRIMARY KEY clauses");
                }
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(TokenKind::RParen, "`)`")?;
            } else {
                let col_name = self.ident()?;
                let ty = self.parse_data_type()?;
                let mut nullable = true;
                let mut inline_pk = false;
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        nullable = false;
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        inline_pk = true;
                        nullable = false;
                    } else if self.eat_kw("NULL") {
                        // explicit NULL, default
                    } else {
                        break;
                    }
                }
                columns.push(ColumnSpec {
                    name: col_name,
                    ty,
                    nullable,
                    inline_pk,
                });
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(TokenKind::RParen, "`)`")?;
        Ok(Stmt::CreateTable {
            name,
            columns,
            primary_key,
        })
    }

    fn parse_create_index(&mut self, unique: bool) -> DbResult<Stmt> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_kind(TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(TokenKind::RParen, "`)`")?;
        Ok(Stmt::CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn parse_insert(&mut self) -> DbResult<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_kind(&TokenKind::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, "`)`")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> DbResult<Stmt> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_kind(TokenKind::Eq, "`=`")?;
            let e = self.parse_expr()?;
            sets.push((col, e));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn parse_select(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_kind(&TokenKind::Star) {
                items.push(SelectItem::Star);
            } else if matches!(self.peek(), TokenKind::Ident(_))
                && self.peek_at(1) == &TokenKind::Dot
                && self.peek_at(2) == &TokenKind::Star
            {
                let alias = self.ident()?;
                self.bump(); // .
                self.bump(); // *
                items.push(SelectItem::QualifiedStar(alias));
            } else {
                let expr = self.parse_expr()?;
                // `AS alias` or a bare (non-reserved) implicit alias.
                let has_alias = self.eat_kw("AS")
                    || matches!(self.peek(), TokenKind::Ident(s) if !is_reserved_after_item(s));
                let alias = if has_alias { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                let table = self.ident()?;
                let has_alias = self.eat_kw("AS")
                    || matches!(self.peek(), TokenKind::Ident(s) if !is_reserved_after_table(s));
                let alias = if has_alias {
                    self.ident()?
                } else {
                    table.clone()
                };
                from.push(TableRef { table, alias });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek_kw("GROUP") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.peek_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let offset = if self.eat_kw("OFFSET") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn parse_expr(&mut self) -> DbResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("OR") {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("AND") {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            let e = self.parse_not()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(e)));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> DbResult<Expr> {
        let lhs = self.parse_additive()?;
        // Comparison operators.
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::bin(op, lhs, rhs));
        }
        let negated = if self.peek_kw("NOT")
            && (self.peek_kw_at(1, "LIKE")
                || self.peek_kw_at(1, "BETWEEN")
                || self.peek_kw_at(1, "IN"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_kind(TokenKind::LParen, "`(`")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, "`)`")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if negated {
            return self.err("expected LIKE, BETWEEN, or IN after NOT");
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> DbResult<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            // Fold literal negation so `-9223372036854775808` round-trips.
            if let Expr::Literal(Value::Int(i)) = e {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = e {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> DbResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Blob(b) => {
                self.bump();
                Ok(Expr::Literal(Value::Bytes(b)))
            }
            TokenKind::Param => {
                self.bump();
                // Params are numbered left-to-right across the whole
                // statement by occurrence order.
                let idx = self.next_param;
                self.next_param += 1;
                Ok(Expr::Param(idx))
            }
            TokenKind::LParen => {
                self.bump();
                if self.peek_kw("SELECT") {
                    let sub = self.parse_select()?;
                    self.expect_kind(TokenKind::RParen, "`)`")?;
                    let slot = self.subqueries.len();
                    self.subqueries.push(sub);
                    return Ok(Expr::Subquery(slot));
                }
                let e = self.parse_expr()?;
                self.expect_kind(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(id) => {
                if id.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Null));
                }
                if id.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if id.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if id.eq_ignore_ascii_case("EXISTS") && self.peek_at(1) == &TokenKind::LParen {
                    self.bump();
                    self.bump();
                    let sub = self.parse_select()?;
                    self.expect_kind(TokenKind::RParen, "`)`")?;
                    let slot = self.subqueries.len();
                    self.subqueries.push(sub);
                    return Ok(Expr::Exists(slot));
                }
                // Function call?
                if self.peek_at(1) == &TokenKind::LParen {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    let mut star = false;
                    if self.eat_kind(&TokenKind::Star) {
                        star = true;
                    } else if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_kind(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_kind(TokenKind::RParen, "`)`")?;
                    return Ok(Expr::Func {
                        name: id.to_ascii_uppercase(),
                        args,
                        star,
                    });
                }
                // Column reference: `name` or `qualifier.name`. Reserved
                // keywords cannot be bare column names (catches mistakes
                // like `SELECT FROM t`).
                if is_reserved_after_item(&id) || id.eq_ignore_ascii_case("SELECT") {
                    return self.err(format!("unexpected keyword `{id}` in expression"));
                }
                self.bump();
                if self.eat_kind(&TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Name(format!("{id}.{col}")));
                }
                Ok(Expr::Name(id))
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }
}

/// Keywords that must not be swallowed as implicit aliases after a SELECT
/// item.
fn is_reserved_after_item(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET", "AND", "OR", "AS", "NOT", "LIKE",
        "BETWEEN", "IN", "IS", "ASC", "DESC", "UNION", "HAVING",
    ];
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(s))
}

/// Keywords that must not be swallowed as implicit aliases after a table
/// reference.
fn is_reserved_after_table(s: &str) -> bool {
    is_reserved_after_item(s) || s.eq_ignore_ascii_case("ON") || s.eq_ignore_ascii_case("SET")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_basic() {
        let p = parse("SELECT a, t.b AS bee FROM t WHERE a = 1 ORDER BY a DESC LIMIT 5 OFFSET 2")
            .unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "bee"));
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].alias, "t");
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(Expr::Literal(Value::Int(5))));
        assert_eq!(s.offset, Some(Expr::Literal(Value::Int(2))));
    }

    #[test]
    fn select_join_with_aliases() {
        let p =
            parse("SELECT x.a, y.a FROM node x, node AS y WHERE x.a = y.b AND y.c > 2").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias, "x");
        assert_eq!(s.from[1].alias, "y");
        let conjuncts = s.where_clause.unwrap().conjuncts();
        assert_eq!(conjuncts.len(), 2);
    }

    #[test]
    fn expression_precedence() {
        let p = parse("SELECT 1 + 2 * 3").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let Expr::Binary(BinOp::Add, l, r) = expr else {
            panic!("got {expr:?}")
        };
        assert_eq!(**l, Expr::Literal(Value::Int(1)));
        assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn boolean_precedence_not_and_or() {
        // NOT a = 1 AND b = 2 OR c = 3  ==  ((NOT (a=1)) AND (b=2)) OR (c=3)
        let p = parse("SELECT * FROM t WHERE NOT a = 1 AND b = 2 OR c = 3").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        let Expr::Binary(BinOp::Or, l, _) = s.where_clause.unwrap() else {
            panic!()
        };
        assert!(matches!(*l, Expr::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn predicates_like_between_in_is() {
        let p = parse(
            "SELECT * FROM t WHERE a LIKE 'x%' AND b NOT BETWEEN 1 AND 2 AND c IN (1,2,3) AND d IS NOT NULL",
        )
        .unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        let parts = s.where_clause.unwrap().conjuncts();
        assert!(matches!(&parts[0], Expr::Like { negated: false, .. }));
        assert!(matches!(&parts[1], Expr::Between { negated: true, .. }));
        assert!(matches!(&parts[2], Expr::InList { list, .. } if list.len() == 3));
        assert!(matches!(&parts[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn params_number_by_occurrence() {
        let p = parse("SELECT ? FROM t WHERE a = ? AND b = ?").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(*expr, Expr::Param(0));
        let parts = s.where_clause.unwrap().conjuncts();
        assert!(matches!(&parts[0], Expr::Binary(_, _, r) if **r == Expr::Param(1)));
        assert!(matches!(&parts[1], Expr::Binary(_, _, r) if **r == Expr::Param(2)));
    }

    #[test]
    fn scalar_subquery_and_exists_are_hoisted() {
        let p = parse(
            "SELECT a FROM t x WHERE 2 = (SELECT COUNT(*) FROM t y WHERE y.p = x.p) AND EXISTS (SELECT a FROM t)",
        )
        .unwrap();
        assert_eq!(p.subqueries.len(), 2);
        let Stmt::Select(s) = p.stmt else { panic!() };
        let parts = s.where_clause.unwrap().conjuncts();
        assert!(matches!(&parts[0], Expr::Binary(BinOp::Eq, _, r) if **r == Expr::Subquery(0)));
        assert_eq!(parts[1], Expr::Exists(1));
    }

    #[test]
    fn aggregates_and_group_by() {
        let p = parse("SELECT tag, COUNT(*), MIN(pos) FROM node GROUP BY tag").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        assert!(
            matches!(&s.items[1], SelectItem::Expr { expr: Expr::Func { name, star: true, .. }, .. } if name == "COUNT")
        );
    }

    #[test]
    fn create_table_variants() {
        let p = parse(
            "CREATE TABLE node (doc INTEGER NOT NULL, pos BIGINT, tag VARCHAR(64), val DOUBLE PRECISION, k BLOB, PRIMARY KEY (doc, pos))",
        )
        .unwrap();
        let Stmt::CreateTable {
            columns,
            primary_key,
            ..
        } = p.stmt
        else {
            panic!()
        };
        assert_eq!(columns.len(), 5);
        assert!(!columns[0].nullable);
        assert_eq!(columns[2].ty, DataType::Text);
        assert_eq!(columns[3].ty, DataType::Float);
        assert_eq!(columns[4].ty, DataType::Bytes);
        assert_eq!(primary_key, vec!["doc".to_string(), "pos".to_string()]);

        let p2 = parse("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
        let Stmt::CreateTable {
            columns,
            primary_key,
            ..
        } = p2.stmt
        else {
            panic!()
        };
        assert!(columns[0].inline_pk);
        assert!(primary_key.is_empty());
    }

    #[test]
    fn create_index_and_drop() {
        let p = parse("CREATE UNIQUE INDEX i ON t (a, b)").unwrap();
        assert!(matches!(
            p.stmt,
            Stmt::CreateIndex { unique: true, ref columns, .. } if columns.len() == 2
        ));
        let p = parse("DROP TABLE IF EXISTS t").unwrap();
        assert!(matches!(
            p.stmt,
            Stmt::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn insert_multi_row_with_columns() {
        let p = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)").unwrap();
        let Stmt::Insert { columns, rows, .. } = p.stmt else {
            panic!()
        };
        assert_eq!(columns.unwrap(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], Expr::Param(0));
        assert_eq!(rows[1][1], Expr::Literal(Value::Null));
    }

    #[test]
    fn update_and_delete() {
        let p = parse("UPDATE t SET a = a + 1, b = 'x' WHERE a > 5").unwrap();
        let Stmt::Update {
            sets, where_clause, ..
        } = p.stmt
        else {
            panic!()
        };
        assert_eq!(sets.len(), 2);
        assert!(where_clause.is_some());
        let p = parse("DELETE FROM t").unwrap();
        assert!(matches!(
            p.stmt,
            Stmt::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn negative_literals_fold() {
        let p = parse("SELECT -5, -2.5").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(*expr, Expr::Literal(Value::Int(-5)));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC a FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t garbage extra tokens ,").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("CREATE TABLE t (a UNKNOWN_TYPE)").is_err());
    }

    #[test]
    fn qualified_star() {
        let p = parse("SELECT x.*, y.a FROM t x, t y").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert!(matches!(&s.items[0], SelectItem::QualifiedStar(a) if a == "x"));
    }

    #[test]
    fn blob_literal_in_predicate() {
        let p = parse("SELECT * FROM d WHERE k >= X'0102' AND k < X'0103'").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        let parts = s.where_clause.unwrap().conjuncts();
        assert!(
            matches!(&parts[0], Expr::Binary(BinOp::Ge, _, r) if **r == Expr::Literal(Value::Bytes(vec![1, 2])))
        );
    }
}
