//! Contention-aware lock acquisition helpers.
//!
//! Every internal latch in the engine (pager backend, WAL, transaction
//! state, plan cache, …) is acquired through these wrappers rather than
//! through `Mutex::lock` / `RwLock::read` directly. They add two behaviors:
//!
//! * **Contention accounting** — an acquisition that finds the latch held
//!   first fails a `try_lock`, then blocks, timing the wait; once through,
//!   it reports the event to [`crate::obs`] attributed to the caller's
//!   [`WaitSite`] (which subsystem's lock this was), with the measured wait
//!   duration feeding that site's wait histogram. Uncontended acquisitions
//!   stay on the fast path (one atomic CAS, no clock read), so the
//!   single-threaded cost is unchanged.
//! * **Poison tolerance** — a thread that panicked while holding a latch
//!   poisons it; the data under an engine latch is always left in a
//!   coherent state at panic sites (plain-value counters, caches that can
//!   be rebuilt, pages whose mutation is protected by transaction
//!   pre-images), so subsequent acquisitions recover the guard instead of
//!   propagating the poison and taking the whole store down.

use crate::obs::WaitSite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};
use std::time::Instant;

/// Acquires `m`, counting contention against `site` and recovering from
/// poisoning.
pub fn lock<T>(m: &Mutex<T>, site: WaitSite) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = m.lock().unwrap_or_else(PoisonError::into_inner);
            crate::obs::registry().record_lock_wait(site, start.elapsed());
            g
        }
    }
}

/// Acquires `l` for shared reading, counting contention against `site` and
/// recovering from poisoning.
pub fn read<T>(l: &RwLock<T>, site: WaitSite) -> RwLockReadGuard<'_, T> {
    match l.try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = l.read().unwrap_or_else(PoisonError::into_inner);
            crate::obs::registry().record_lock_wait(site, start.elapsed());
            g
        }
    }
}

/// Acquires `l` exclusively, counting contention against `site` and
/// recovering from poisoning.
pub fn write<T>(l: &RwLock<T>, site: WaitSite) -> RwLockWriteGuard<'_, T> {
    match l.try_write() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = l.write().unwrap_or_else(PoisonError::into_inner);
            crate::obs::registry().record_lock_wait(site, start.elapsed());
            g
        }
    }
}

/// An epoch-published slot holding an immutable snapshot behind an `Arc`.
///
/// This is the publication primitive behind the pager's lock-free read
/// path: a writer builds a new immutable value off to the side, then
/// [`publish`](EpochCell::publish)es it — store the `Arc`, bump the epoch.
/// Readers call [`epoch`](EpochCell::epoch) (one `Acquire` load) to
/// validate a previously cloned snapshot and only touch the slot's lock on
/// an epoch mismatch, so a reader that already holds the current snapshot
/// never blocks and never records a wait.
///
/// The slot itself is an `RwLock<Arc<T>>` rather than a bare atomic
/// pointer: `std` has no atomic `Arc` swap, and the lock is held only for
/// the duration of an `Arc` clone/store (never while building the value),
/// so contention on it is bounded by publication frequency, not read
/// traffic.
///
/// Epoch/slot ordering: `publish` stores the slot first, then bumps the
/// epoch with `Release`. A racing [`load`](EpochCell::load) can therefore
/// observe a *newer* value labelled with the previous epoch, which is
/// benign — every value ever read from the slot is a complete published
/// snapshot, and the stale label only causes one extra refresh on the next
/// validation.
#[derive(Debug)]
pub struct EpochCell<T> {
    epoch: AtomicU64,
    slot: RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell publishing `initial` at epoch 0.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            epoch: AtomicU64::new(0),
            slot: RwLock::new(initial),
        }
    }

    /// The current publication epoch (monotonic; bumps once per
    /// [`publish`](EpochCell::publish)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot and the epoch it was validated against.
    /// Readers cache the pair and revalidate with [`epoch`](EpochCell::epoch)
    /// alone on subsequent reads.
    pub fn load(&self, site: WaitSite) -> (u64, Arc<T>) {
        let epoch = self.epoch();
        (epoch, Arc::clone(&read(&self.slot, site)))
    }

    /// Publishes `value` as the new current snapshot and advances the
    /// epoch. The caller must pass a fully built value — readers may
    /// observe it the instant this returns (or even mid-call).
    pub fn publish(&self, value: Arc<T>, site: WaitSite) {
        *write(&self.slot, site) = value;
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquisitions_do_not_count() {
        let before = crate::obs::snapshot().lock_waits;
        let m = Mutex::new(1);
        let l = RwLock::new(2);
        assert_eq!(*lock(&m, WaitSite::Backend), 1);
        assert_eq!(*read(&l, WaitSite::Backend), 2);
        assert_eq!(*write(&l, WaitSite::Backend), 2);
        // Other tests contend concurrently on their own latches, but this
        // test's three acquisitions must not have added to the count from
        // this thread; the global registry can only have grown elsewhere.
        assert!(crate::obs::snapshot().lock_waits >= before);
        let m2 = Mutex::new(3);
        let before_wal = crate::obs::snapshot().lock_waits_at(WaitSite::Wal);
        assert_eq!(*lock(&m2, WaitSite::Wal), 3);
        assert_eq!(
            crate::obs::snapshot().lock_waits_at(WaitSite::Wal),
            before_wal,
            "uncontended lock must not record a wait"
        );
    }

    #[test]
    fn contended_acquisition_counts_site_and_duration() {
        let before = crate::obs::snapshot();
        let m = Arc::new(Mutex::new(0u32));
        let held = lock(&m, WaitSite::PlanCache);
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            *lock(&m2, WaitSite::PlanCache) = 7;
        });
        // Give the thread time to hit the contended path, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        t.join().unwrap();
        assert_eq!(*lock(&m, WaitSite::PlanCache), 7);
        let after = crate::obs::snapshot();
        assert!(after.lock_waits > before.lock_waits);
        assert!(
            after.lock_waits_at(WaitSite::PlanCache) > before.lock_waits_at(WaitSite::PlanCache)
        );
        let hist = after.wait_latency_at(WaitSite::PlanCache);
        assert!(hist.count > before.wait_latency_at(WaitSite::PlanCache).count);
        assert!(
            hist.max > std::time::Duration::ZERO,
            "wait duration measured"
        );
    }

    #[test]
    fn poisoned_latches_recover() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = lock(&m2, WaitSite::Backend);
            panic!("poison it");
        })
        .join();
        assert_eq!(
            *lock(&m, WaitSite::Backend),
            5,
            "poisoned mutex still usable"
        );
        let l = Arc::new(RwLock::new(6));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = write(&l2, WaitSite::Backend);
            panic!("poison it");
        })
        .join();
        assert_eq!(
            *read(&l, WaitSite::Backend),
            6,
            "poisoned rwlock still readable"
        );
        assert_eq!(*write(&l, WaitSite::Backend), 6, "and writable");
    }

    #[test]
    fn epoch_cell_publishes_and_validates() {
        let cell = EpochCell::new(Arc::new(vec![1, 2, 3]));
        let (e0, v0) = cell.load(WaitSite::Backend);
        assert_eq!(e0, 0);
        assert_eq!(*v0, vec![1, 2, 3]);
        assert_eq!(cell.epoch(), e0, "cached epoch still valid");
        cell.publish(Arc::new(vec![4]), WaitSite::Backend);
        assert_ne!(cell.epoch(), e0, "publish must invalidate cached readers");
        let (e1, v1) = cell.load(WaitSite::Backend);
        assert_eq!(e1, 1);
        assert_eq!(*v1, vec![4]);
        // The old snapshot stays alive and unchanged for readers that
        // still hold it.
        assert_eq!(*v0, vec![1, 2, 3]);
    }

    #[test]
    fn epoch_cell_readers_only_ever_see_complete_snapshots() {
        let cell = Arc::new(EpochCell::new(Arc::new(vec![0u64; 64])));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (_, snap) = cell.load(WaitSite::Backend);
                        let first = snap[0];
                        assert!(
                            snap.iter().all(|&x| x == first),
                            "torn snapshot: mixed generations in one value"
                        );
                    }
                })
            })
            .collect();
        for gen in 1..200u64 {
            cell.publish(Arc::new(vec![gen; 64]), WaitSite::Backend);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 199);
    }
}
