//! Contention-aware lock acquisition helpers.
//!
//! Every internal latch in the engine (pager backend, WAL, transaction
//! state, plan cache, …) is acquired through these wrappers rather than
//! through `Mutex::lock` / `RwLock::read` directly. They add two behaviors:
//!
//! * **Contention accounting** — an acquisition that finds the latch held
//!   first fails a `try_lock`, then blocks, timing the wait; once through,
//!   it reports the event to [`crate::obs`] attributed to the caller's
//!   [`WaitSite`] (which subsystem's lock this was), with the measured wait
//!   duration feeding that site's wait histogram. Uncontended acquisitions
//!   stay on the fast path (one atomic CAS, no clock read), so the
//!   single-threaded cost is unchanged.
//! * **Poison tolerance** — a thread that panicked while holding a latch
//!   poisons it; the data under an engine latch is always left in a
//!   coherent state at panic sites (plain-value counters, caches that can
//!   be rebuilt, pages whose mutation is protected by transaction
//!   pre-images), so subsequent acquisitions recover the guard instead of
//!   propagating the poison and taking the whole store down.

use crate::obs::WaitSite;
use std::sync::{
    Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};
use std::time::Instant;

/// Acquires `m`, counting contention against `site` and recovering from
/// poisoning.
pub fn lock<T>(m: &Mutex<T>, site: WaitSite) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = m.lock().unwrap_or_else(PoisonError::into_inner);
            crate::obs::registry().record_lock_wait(site, start.elapsed());
            g
        }
    }
}

/// Acquires `l` for shared reading, counting contention against `site` and
/// recovering from poisoning.
pub fn read<T>(l: &RwLock<T>, site: WaitSite) -> RwLockReadGuard<'_, T> {
    match l.try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = l.read().unwrap_or_else(PoisonError::into_inner);
            crate::obs::registry().record_lock_wait(site, start.elapsed());
            g
        }
    }
}

/// Acquires `l` exclusively, counting contention against `site` and
/// recovering from poisoning.
pub fn write<T>(l: &RwLock<T>, site: WaitSite) -> RwLockWriteGuard<'_, T> {
    match l.try_write() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = l.write().unwrap_or_else(PoisonError::into_inner);
            crate::obs::registry().record_lock_wait(site, start.elapsed());
            g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_acquisitions_do_not_count() {
        let before = crate::obs::snapshot().lock_waits;
        let m = Mutex::new(1);
        let l = RwLock::new(2);
        assert_eq!(*lock(&m, WaitSite::Backend), 1);
        assert_eq!(*read(&l, WaitSite::Backend), 2);
        assert_eq!(*write(&l, WaitSite::Backend), 2);
        // Other tests contend concurrently on their own latches, but this
        // test's three acquisitions must not have added to the count from
        // this thread; the global registry can only have grown elsewhere.
        assert!(crate::obs::snapshot().lock_waits >= before);
        let m2 = Mutex::new(3);
        let before_wal = crate::obs::snapshot().lock_waits_at(WaitSite::Wal);
        assert_eq!(*lock(&m2, WaitSite::Wal), 3);
        assert_eq!(
            crate::obs::snapshot().lock_waits_at(WaitSite::Wal),
            before_wal,
            "uncontended lock must not record a wait"
        );
    }

    #[test]
    fn contended_acquisition_counts_site_and_duration() {
        let before = crate::obs::snapshot();
        let m = Arc::new(Mutex::new(0u32));
        let held = lock(&m, WaitSite::PlanCache);
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            *lock(&m2, WaitSite::PlanCache) = 7;
        });
        // Give the thread time to hit the contended path, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        t.join().unwrap();
        assert_eq!(*lock(&m, WaitSite::PlanCache), 7);
        let after = crate::obs::snapshot();
        assert!(after.lock_waits > before.lock_waits);
        assert!(
            after.lock_waits_at(WaitSite::PlanCache) > before.lock_waits_at(WaitSite::PlanCache)
        );
        let hist = after.wait_latency_at(WaitSite::PlanCache);
        assert!(hist.count > before.wait_latency_at(WaitSite::PlanCache).count);
        assert!(
            hist.max > std::time::Duration::ZERO,
            "wait duration measured"
        );
    }

    #[test]
    fn poisoned_latches_recover() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = lock(&m2, WaitSite::Backend);
            panic!("poison it");
        })
        .join();
        assert_eq!(
            *lock(&m, WaitSite::Backend),
            5,
            "poisoned mutex still usable"
        );
        let l = Arc::new(RwLock::new(6));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = write(&l2, WaitSite::Backend);
            panic!("poison it");
        })
        .join();
        assert_eq!(
            *read(&l, WaitSite::Backend),
            6,
            "poisoned rwlock still readable"
        );
        assert_eq!(*write(&l, WaitSite::Backend), 6, "and writable");
    }
}
