//! Contention-aware lock acquisition helpers.
//!
//! Every internal latch in the engine (pager backend, WAL, transaction
//! state, plan cache, …) is acquired through these wrappers rather than
//! through `Mutex::lock` / `RwLock::read` directly. They add two behaviors:
//!
//! * **Contention accounting** — an acquisition that finds the latch held
//!   first fails a `try_lock`, bumps the global
//!   [`lock_waits`](crate::obs::Registry::lock_waits) counter, and only then
//!   blocks. Uncontended acquisitions stay on the fast path (one atomic
//!   CAS), so the single-threaded cost is unchanged.
//! * **Poison tolerance** — a thread that panicked while holding a latch
//!   poisons it; the data under an engine latch is always left in a
//!   coherent state at panic sites (plain-value counters, caches that can
//!   be rebuilt, pages whose mutation is protected by transaction
//!   pre-images), so subsequent acquisitions recover the guard instead of
//!   propagating the poison and taking the whole store down.

use std::sync::{
    Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};

/// Acquires `m`, counting contention and recovering from poisoning.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            crate::obs::registry().record_lock_wait();
            m.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

/// Acquires `l` for shared reading, counting contention and recovering
/// from poisoning.
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            crate::obs::registry().record_lock_wait();
            l.read().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

/// Acquires `l` exclusively, counting contention and recovering from
/// poisoning.
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.try_write() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            crate::obs::registry().record_lock_wait();
            l.write().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_acquisitions_do_not_count() {
        let before = crate::obs::registry().lock_waits.get();
        let m = Mutex::new(1);
        let l = RwLock::new(2);
        assert_eq!(*lock(&m), 1);
        assert_eq!(*read(&l), 2);
        assert_eq!(*write(&l), 2);
        assert_eq!(crate::obs::registry().lock_waits.get(), before);
    }

    #[test]
    fn contended_acquisition_counts_and_blocks() {
        let before = crate::obs::registry().lock_waits.get();
        let m = Arc::new(Mutex::new(0u32));
        let held = lock(&m);
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            *lock(&m2) = 7;
        });
        // Give the thread time to hit the contended path, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        t.join().unwrap();
        assert_eq!(*lock(&m), 7);
        assert!(crate::obs::registry().lock_waits.get() > before);
    }

    #[test]
    fn poisoned_latches_recover() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = lock(&m2);
            panic!("poison it");
        })
        .join();
        assert_eq!(*lock(&m), 5, "poisoned mutex still usable");
        let l = Arc::new(RwLock::new(6));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = write(&l2);
            panic!("poison it");
        })
        .join();
        assert_eq!(*read(&l), 6, "poisoned rwlock still readable");
        assert_eq!(*write(&l), 6, "and writable");
    }
}
