//! Query planning: name binding and physical plan construction.
//!
//! The planner turns a parsed [`SelectStmt`] into a left-deep physical plan:
//!
//! 1. **Bind** — column names resolve to positions in the *combined row*
//!    (the concatenation of the FROM tables' rows, in FROM order). Names
//!    that don't resolve locally resolve against the enclosing query's scope
//!    as [`Expr::OuterColumn`] (one level of correlation, which is what the
//!    XPath translation needs for position predicates).
//! 2. **Access-path selection** — for each table, the planner extracts
//!    sargable conjuncts (`col = x`, `col < x`, `BETWEEN`, ...) whose other
//!    side is available *before* the table is joined (constants, parameters,
//!    outer columns, columns of earlier FROM tables) and picks the index —
//!    primary key or secondary — with the longest equality prefix plus an
//!    optional range. A bound index access below a join *is* the
//!    index-nested-loop join. Equality conjuncts between a bound table and
//!    an unbound full scan become hash-join keys instead.
//! 3. **Order** — `ORDER BY` keys that match the first table's index-scan
//!    order are satisfied without a sort (left-deep joins here preserve
//!    left-input order); otherwise an explicit sort is planned before
//!    projection.
//!
//! Aggregate queries plan a hash aggregate; every non-aggregate output
//! expression must structurally match a `GROUP BY` expression.

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::expr::{BinOp, Expr};
use crate::sql::ast::{OrderItem, SelectItem, SelectStmt};

/// How a table's rows are fetched.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan the whole heap.
    FullScan,
    /// Scan an index range. `index` is `None` for the primary key.
    Index {
        /// `None` for the primary key, `Some(i)` for `table.indexes[i]`.
        index: Option<usize>,
        /// Equality values for a prefix of the index columns. Evaluated
        /// against the already-joined (left) row, so joins fall out of this.
        eq: Vec<Expr>,
        /// Optional lower bound on the next index column: `(expr, inclusive)`.
        lower: Option<(Expr, bool)>,
        /// Optional upper bound on the next index column.
        upper: Option<(Expr, bool)>,
        /// Scan direction.
        reverse: bool,
    },
    /// Scan a *batch* of ranges on the index column following the equality
    /// prefix, in one operator invocation: the union of the (merged,
    /// sorted) ranges, emitted in key order with one B+tree descent per
    /// disjoint range. Planned from a `MULTIRANGE(col, batch)` predicate;
    /// `ranges` evaluates to the encoded batch
    /// (see [`crate::value::encode_range_batch`]).
    MultiRange {
        /// `None` for the primary key, `Some(i)` for `table.indexes[i]`.
        index: Option<usize>,
        /// Equality values for a prefix of the index columns.
        eq: Vec<Expr>,
        /// The encoded `(lo, hi)` batch parameter.
        ranges: Expr,
    },
}

/// One table access (a scan producing that table's columns).
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Table name in the catalog.
    pub table: String,
    /// How to fetch rows.
    pub path: AccessPath,
    /// Number of columns the table contributes to the combined row.
    pub width: usize,
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`: counts rows.
    CountStar,
    /// `COUNT(expr)`: counts non-NULL values.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

/// One aggregate call: function + bound argument.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Which aggregate.
    pub func: AggFunc,
    /// Argument expression (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
}

/// A physical plan node. Expressions inside a node are bound against the
/// node's *input* row layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Produces a single empty row (`SELECT 1`).
    OneRow,
    /// First table of the FROM list.
    Scan(Access),
    /// Left-deep join: for every left row, fetch matching `right` rows.
    /// When `hash_keys` is set (and the right path is a full scan) the join
    /// executes as a hash join; otherwise it is a (index-)nested-loop join.
    Join {
        /// The already-joined prefix.
        left: Box<Node>,
        /// The table being joined in.
        right: Access,
        /// Residual predicate over the concatenated row.
        residual: Option<Expr>,
        /// `(left key exprs, right key exprs)` for hash execution; right key
        /// expressions are bound against the right table's local row.
        hash_keys: Option<(Vec<Expr>, Vec<Expr>)>,
    },
    /// Row filter.
    Filter {
        /// Input node.
        input: Box<Node>,
        /// Keep rows where this evaluates to true.
        pred: Expr,
    },
    /// Hash aggregation. Output row layout: group-by values, then one column
    /// per aggregate.
    Aggregate {
        /// Input node.
        input: Box<Node>,
        /// Grouping keys.
        group_by: Vec<Expr>,
        /// Aggregates computed per group.
        aggs: Vec<AggCall>,
    },
    /// Full sort of the input.
    Sort {
        /// Input node.
        input: Box<Node>,
        /// `(key, descending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// Projection.
    Project {
        /// Input node.
        input: Box<Node>,
        /// Output expressions, one per column.
        exprs: Vec<Expr>,
    },
    /// Order-preserving duplicate elimination.
    Distinct {
        /// Input node.
        input: Box<Node>,
    },
    /// `LIMIT`/`OFFSET`.
    Limit {
        /// Input node.
        input: Box<Node>,
        /// Maximum rows to emit.
        limit: Option<Expr>,
        /// Rows to skip first.
        offset: Option<Expr>,
    },
}

/// A fully planned `SELECT`: the root node plus subplans for the statement's
/// scalar/EXISTS subqueries (indexed by `Expr::Subquery`/`Expr::Exists` slot).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// The plan tree.
    pub root: Node,
    /// Plans for the statement's subquery slots.
    pub subplans: Vec<SelectPlan>,
    /// Output column names.
    pub columns: Vec<String>,
    /// `true` when the statement had an `ORDER BY` that the chosen index
    /// scan order already satisfies (so no [`Node::Sort`] was planned).
    pub sort_elided: bool,
}

/// A binding scope: the combined-row layout of a query.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// `(table alias, column name)` per combined-row position.
    pub cols: Vec<(String, String)>,
}

impl Scope {
    /// Resolves `name` (`col` or `alias.col`) to a combined-row position.
    pub fn resolve(&self, name: &str) -> DbResult<usize> {
        let (qualifier, col) = match name.split_once('.') {
            Some((q, c)) => (Some(q), c),
            None => (None, name),
        };
        let mut found = None;
        for (i, (alias, cname)) in self.cols.iter().enumerate() {
            if !cname.eq_ignore_ascii_case(col) {
                continue;
            }
            if let Some(q) = qualifier {
                if !alias.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(DbError::Schema(format!("ambiguous column `{name}`")));
            }
            found = Some(i);
        }
        found.ok_or_else(|| DbError::Unknown(format!("column `{name}`")))
    }
}

/// Plans a `SELECT` statement. `subqueries` is the statement's hoisted
/// subquery list (see [`crate::sql::ast::ParsedStmt`]); `outer` is the
/// enclosing scope when planning a correlated subquery.
pub fn plan_select(
    catalog: &Catalog,
    stmt: &SelectStmt,
    subqueries: &[SelectStmt],
    outer: Option<&Scope>,
) -> DbResult<SelectPlan> {
    Planner {
        catalog,
        subqueries,
        subplans: vec![None; subqueries.len()],
    }
    .plan(stmt, outer)
}

struct Planner<'a> {
    catalog: &'a Catalog,
    subqueries: &'a [SelectStmt],
    subplans: Vec<Option<SelectPlan>>,
}

impl<'a> Planner<'a> {
    fn plan(mut self, stmt: &SelectStmt, outer: Option<&Scope>) -> DbResult<SelectPlan> {
        let (root, columns, sort_elided) = self.plan_query(stmt, outer)?;
        // Slots not referenced from *this* query block (e.g. slots that belong
        // to the enclosing statement when this is itself a subquery) get inert
        // placeholders; they are never executed through this plan.
        let subplans = self
            .subplans
            .into_iter()
            .map(|p| {
                p.unwrap_or(SelectPlan {
                    root: Node::OneRow,
                    subplans: Vec::new(),
                    columns: Vec::new(),
                    sort_elided: false,
                })
            })
            .collect::<Vec<_>>();
        Ok(SelectPlan {
            root,
            subplans,
            columns,
            sort_elided,
        })
    }

    /// Plans one query block; returns the root node, output column names,
    /// and whether an `ORDER BY` sort was elided by index order.
    fn plan_query(
        &mut self,
        stmt: &SelectStmt,
        outer: Option<&Scope>,
    ) -> DbResult<(Node, Vec<String>, bool)> {
        // ---------------- FROM scope ----------------
        let mut scope = Scope::default();
        let mut tables = Vec::new(); // (alias, table name, width, offset)
        for tref in &stmt.from {
            let t = self.catalog.table(&tref.table)?;
            if tables
                .iter()
                .any(|(a, _, _, _): &(String, String, usize, usize)| {
                    a.eq_ignore_ascii_case(&tref.alias)
                })
            {
                return Err(DbError::Schema(format!(
                    "duplicate table alias `{}`",
                    tref.alias
                )));
            }
            let offset = scope.cols.len();
            for c in &t.schema.columns {
                scope.cols.push((tref.alias.clone(), c.name.clone()));
            }
            tables.push((
                tref.alias.clone(),
                tref.table.to_ascii_lowercase(),
                t.schema.columns.len(),
                offset,
            ));
        }

        // ---------------- WHERE ----------------
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            for c in w.clone().conjuncts() {
                let bound = self.bind(c, &scope, outer)?;
                if contains_aggregate(&bound) {
                    return Err(DbError::Schema(
                        "aggregate functions are not allowed in WHERE".into(),
                    ));
                }
                conjuncts.push(bound);
            }
        }

        // ---------------- join tree ----------------
        let mut root = if tables.is_empty() {
            if !conjuncts.is_empty() {
                // WHERE without FROM: filter over the single empty row.
                let pred = Expr::conjoin(std::mem::take(&mut conjuncts)).expect("non-empty");
                Node::Filter {
                    input: Box::new(Node::OneRow),
                    pred,
                }
            } else {
                Node::OneRow
            }
        } else {
            self.build_joins(&tables, &mut conjuncts)?
        };
        // Conjuncts that could not be placed inside the join tree (those
        // containing subqueries, whose correlated references need the full
        // combined row) run as a final filter.
        if !tables.is_empty() {
            if let Some(pred) = Expr::conjoin(std::mem::take(&mut conjuncts)) {
                root = Node::Filter {
                    input: Box::new(root),
                    pred,
                };
            }
        }

        // ---------------- aggregates ----------------
        let has_aggregate = stmt.items.iter().any(
            |i| matches!(i, SelectItem::Expr { expr, .. } if contains_aggregate_unbound(expr)),
        ) || !stmt.group_by.is_empty();

        let (mut root, out_exprs, out_names, agg_shape) = if has_aggregate {
            let (node, out_exprs, names) = self.plan_aggregate(stmt, root, &scope, outer)?;
            let shape = match &node {
                Node::Aggregate { group_by, aggs, .. } => Some((group_by.clone(), aggs.clone())),
                _ => unreachable!("plan_aggregate returns an Aggregate node"),
            };
            (node, out_exprs, names, shape)
        } else {
            // Plain projection.
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Star => {
                        for (i, (_, cname)) in scope.cols.iter().enumerate() {
                            exprs.push(Expr::Column(i));
                            names.push(cname.clone());
                        }
                    }
                    SelectItem::QualifiedStar(alias) => {
                        let mut any = false;
                        for (i, (a, cname)) in scope.cols.iter().enumerate() {
                            if a.eq_ignore_ascii_case(alias) {
                                exprs.push(Expr::Column(i));
                                names.push(cname.clone());
                                any = true;
                            }
                        }
                        if !any {
                            return Err(DbError::Unknown(format!("table alias `{alias}`")));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let bound = self.bind(expr.clone(), &scope, outer)?;
                        names.push(alias.clone().unwrap_or_else(|| display_name(expr)));
                        exprs.push(bound);
                    }
                }
            }
            (root, exprs, names, None)
        };

        // ---------------- ORDER BY ----------------
        let mut sort_elided = false;
        if !stmt.order_by.is_empty() {
            let keys = self.bind_order_keys(
                &stmt.order_by,
                stmt,
                &scope,
                outer,
                &out_exprs,
                agg_shape.as_ref(),
            )?;
            if !sort_satisfied_by_plan(self.catalog, &root, &keys) {
                root = Node::Sort {
                    input: Box::new(root),
                    keys,
                };
            } else {
                sort_elided = true;
            }
        }

        // ---------------- project / distinct / limit ----------------
        root = Node::Project {
            input: Box::new(root),
            exprs: out_exprs,
        };
        if stmt.distinct {
            root = Node::Distinct {
                input: Box::new(root),
            };
        }
        if stmt.limit.is_some() || stmt.offset.is_some() {
            let limit = stmt
                .limit
                .as_ref()
                .map(|e| self.bind_const(e.clone()))
                .transpose()?;
            let offset = stmt
                .offset
                .as_ref()
                .map(|e| self.bind_const(e.clone()))
                .transpose()?;
            root = Node::Limit {
                input: Box::new(root),
                limit,
                offset,
            };
        }
        Ok((root, out_names, sort_elided))
    }

    /// Builds the left-deep join tree, consuming sargable conjuncts into
    /// access paths and the rest into residual filters.
    fn build_joins(
        &mut self,
        tables: &[(String, String, usize, usize)],
        conjuncts: &mut Vec<Expr>,
    ) -> DbResult<Node> {
        let mut root: Option<Node> = None;
        let mut joined_width = 0usize;
        for (level, (_alias, tname, width, offset)) in tables.iter().enumerate() {
            let table = self.catalog.table(tname)?;
            // Partition the remaining conjuncts: those fully evaluable once
            // this table is joined.
            let avail_width = joined_width + width;
            let (mut level_conjuncts, rest): (Vec<Expr>, Vec<Expr>) =
                std::mem::take(conjuncts).into_iter().partition(|c| {
                    self.effective_max_column(c)
                        .map_or(level == 0, |m| m < avail_width)
                });
            *conjuncts = rest;
            // Pick the access path for this table.
            let path =
                choose_access_path(table, *offset, *width, joined_width, &mut level_conjuncts);
            let access = Access {
                table: tname.clone(),
                path,
                width: *width,
            };
            // Hash-join keys: equi conjuncts left-col = right-col when the
            // right side is a full scan.
            let mut hash_keys = None;
            if level > 0 && access.path == AccessPath::FullScan {
                let mut lk = Vec::new();
                let mut rk = Vec::new();
                let mut remaining = Vec::new();
                for c in level_conjuncts.drain(..) {
                    if let Expr::Binary(BinOp::Eq, a, b) = &c {
                        let (la, lb) = (max_column(a), max_column(b));
                        let local = |m: Option<usize>| {
                            m.is_some_and(|i| i >= joined_width && i < avail_width)
                        };
                        let outer_side = |e: &Expr| max_column(e).is_none_or(|i| i < joined_width);
                        if local(lb)
                            && min_column(b).is_none_or(|i| i >= joined_width)
                            && outer_side(a)
                        {
                            lk.push((**a).clone());
                            rk.push(shift_columns((**b).clone(), joined_width));
                            continue;
                        }
                        if local(la)
                            && min_column(a).is_none_or(|i| i >= joined_width)
                            && outer_side(b)
                        {
                            lk.push((**b).clone());
                            rk.push(shift_columns((**a).clone(), joined_width));
                            continue;
                        }
                    }
                    remaining.push(c);
                }
                level_conjuncts = remaining;
                if !lk.is_empty() {
                    hash_keys = Some((lk, rk));
                }
            }
            let residual = Expr::conjoin(level_conjuncts);
            root = Some(match root {
                None => {
                    let scan = Node::Scan(access);
                    match residual {
                        Some(pred) => Node::Filter {
                            input: Box::new(scan),
                            pred,
                        },
                        None => scan,
                    }
                }
                Some(left) => Node::Join {
                    left: Box::new(left),
                    right: access,
                    residual,
                    hash_keys,
                },
            });
            joined_width = avail_width;
        }
        Ok(root.expect("at least one table"))
    }

    /// Plans the aggregate pipeline; returns (node, output exprs over the
    /// aggregate's output row, output names).
    fn plan_aggregate(
        &mut self,
        stmt: &SelectStmt,
        input: Node,
        scope: &Scope,
        outer: Option<&Scope>,
    ) -> DbResult<(Node, Vec<Expr>, Vec<String>)> {
        let group_by: Vec<Expr> = stmt
            .group_by
            .iter()
            .map(|e| self.bind(e.clone(), scope, outer))
            .collect::<DbResult<_>>()?;
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut out_exprs = Vec::new();
        let mut out_names = Vec::new();
        for item in &stmt.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::Schema(
                    "`*` cannot be combined with aggregates".into(),
                ));
            };
            let bound = self.bind(expr.clone(), scope, outer)?;
            let mapped = rewrite_for_aggregate(bound, &group_by, &mut aggs)?;
            out_names.push(alias.clone().unwrap_or_else(|| display_name(expr)));
            out_exprs.push(mapped);
        }
        let node = Node::Aggregate {
            input: Box::new(input),
            group_by,
            aggs,
        };
        Ok((node, out_exprs, out_names))
    }

    fn bind_order_keys(
        &mut self,
        order_by: &[OrderItem],
        stmt: &SelectStmt,
        scope: &Scope,
        outer: Option<&Scope>,
        out_exprs: &[Expr],
        agg_shape: Option<&(Vec<Expr>, Vec<AggCall>)>,
    ) -> DbResult<Vec<(Expr, bool)>> {
        let mut keys = Vec::new();
        for item in order_by {
            // Positional: ORDER BY 2.
            if let Expr::Literal(crate::value::Value::Int(k)) = &item.expr {
                let idx = usize::try_from(*k)
                    .ok()
                    .and_then(|k| k.checked_sub(1))
                    .filter(|&i| i < out_exprs.len())
                    .ok_or_else(|| {
                        DbError::Schema(format!("ORDER BY position {k} out of range"))
                    })?;
                keys.push((out_exprs[idx].clone(), item.desc));
                continue;
            }
            // Alias reference: ORDER BY alias.
            if let Expr::Name(n) = &item.expr {
                if let Some(idx) = stmt.items.iter().position(|i| {
                    matches!(i, SelectItem::Expr { alias: Some(a), .. } if a.eq_ignore_ascii_case(n))
                }) {
                    keys.push((out_exprs[idx].clone(), item.desc));
                    continue;
                }
            }
            if let Some((group_by, aggs)) = agg_shape {
                // Rebind against the aggregate output: the key must map to a
                // GROUP BY expression or an already-computed aggregate.
                let bound = self.bind(item.expr.clone(), scope, outer)?;
                let mut probe = aggs.clone();
                let mapped = rewrite_for_aggregate(bound, group_by, &mut probe)?;
                if probe.len() != aggs.len() {
                    return Err(DbError::Unsupported(
                        "ORDER BY in an aggregate query must reference a \
                         GROUP BY column, a selected aggregate, an output \
                         alias, or a position"
                            .into(),
                    ));
                }
                keys.push((mapped, item.desc));
                continue;
            }
            keys.push((self.bind(item.expr.clone(), scope, outer)?, item.desc));
        }
        Ok(keys)
    }

    /// Binds an expression: resolves names against `scope` (falling back to
    /// `outer` as correlation) and plans subquery slots.
    fn bind(&mut self, expr: Expr, scope: &Scope, outer: Option<&Scope>) -> DbResult<Expr> {
        // Plan any subquery slots reachable from this expression first.
        let mut slots = Vec::new();
        expr.visit(&mut |e| {
            if let Expr::Subquery(s) | Expr::Exists(s) = e {
                slots.push(*s);
            }
        });
        for slot in slots {
            if self.subplans[slot].is_none() {
                if outer.is_some() {
                    return Err(DbError::Unsupported(
                        "subqueries nested more than one level deep".into(),
                    ));
                }
                let sub = plan_select(
                    self.catalog,
                    &self.subqueries[slot].clone(),
                    self.subqueries,
                    Some(scope),
                )?;
                self.subplans[slot] = Some(sub);
            }
        }
        expr.map(&mut |e| match e {
            Expr::Name(n) => match scope.resolve(&n) {
                Ok(i) => Ok(Expr::Column(i)),
                Err(err) => {
                    if let Some(o) = outer {
                        if let Ok(i) = o.resolve(&n) {
                            return Ok(Expr::OuterColumn(i));
                        }
                    }
                    Err(err)
                }
            },
            other => Ok(other),
        })
    }

    /// The largest combined-row column a conjunct depends on, *including*
    /// the outer-column references of any subqueries it contains (their
    /// `OuterColumn`s index this query's combined row). Determines the
    /// earliest join level the conjunct can run at.
    fn effective_max_column(&self, e: &Expr) -> Option<usize> {
        let mut max = max_column(e);
        let mut bump = |m: Option<usize>| {
            if let Some(m) = m {
                max = Some(max.map_or(m, |cur| cur.max(m)));
            }
        };
        e.visit(&mut |x| {
            if let Expr::Subquery(s) | Expr::Exists(s) = x {
                if let Some(Some(plan)) = self.subplans.get(*s) {
                    bump(max_outer_column_of_plan(plan));
                }
            }
        });
        max
    }

    /// Binds an expression that must be constant (LIMIT/OFFSET).
    fn bind_const(&mut self, expr: Expr) -> DbResult<Expr> {
        if !expr.is_const() {
            return Err(DbError::Schema(
                "LIMIT/OFFSET must be a constant expression".into(),
            ));
        }
        Ok(expr)
    }
}

/// Largest `Column` index referenced, if any. (`OuterColumn` and `Param` do
/// not count: they are available before any table is joined.)
fn max_column(e: &Expr) -> Option<usize> {
    let mut max = None;
    e.visit(&mut |x| {
        if let Expr::Column(i) = x {
            max = Some(max.map_or(*i, |m: usize| m.max(*i)));
        }
    });
    max
}

/// Smallest `Column` index referenced, if any.
fn min_column(e: &Expr) -> Option<usize> {
    let mut min: Option<usize> = None;
    e.visit(&mut |x| {
        if let Expr::Column(i) = x {
            min = Some(min.map_or(*i, |m| m.min(*i)));
        }
    });
    min
}

/// Shifts every `Column(i)` down by `delta` (used to rebase an expression
/// onto a table-local row).
fn shift_columns(e: Expr, delta: usize) -> Expr {
    e.map(&mut |x| {
        Ok(match x {
            Expr::Column(i) => Expr::Column(i - delta),
            other => other,
        })
    })
    .expect("shift cannot fail")
}

/// Applies `f` to every expression embedded in a plan tree.
fn walk_plan_exprs(node: &Node, f: &mut impl FnMut(&Expr)) {
    let walk_access = |a: &Access, f: &mut dyn FnMut(&Expr)| match &a.path {
        AccessPath::Index {
            eq, lower, upper, ..
        } => {
            for e in eq {
                e.visit(&mut |x| f(x));
            }
            if let Some((e, _)) = lower {
                e.visit(&mut |x| f(x));
            }
            if let Some((e, _)) = upper {
                e.visit(&mut |x| f(x));
            }
        }
        AccessPath::MultiRange { eq, ranges, .. } => {
            for e in eq {
                e.visit(&mut |x| f(x));
            }
            ranges.visit(&mut |x| f(x));
        }
        AccessPath::FullScan => {}
    };
    match node {
        Node::OneRow => {}
        Node::Scan(a) => walk_access(a, f),
        Node::Join {
            left,
            right,
            residual,
            hash_keys,
        } => {
            walk_plan_exprs(left, f);
            walk_access(right, f);
            if let Some(r) = residual {
                r.visit(f);
            }
            if let Some((lk, rk)) = hash_keys {
                for e in lk.iter().chain(rk) {
                    e.visit(f);
                }
            }
        }
        Node::Filter { input, pred } => {
            pred.visit(f);
            walk_plan_exprs(input, f);
        }
        Node::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            for e in group_by {
                e.visit(f);
            }
            for a in aggs {
                if let Some(e) = &a.arg {
                    e.visit(f);
                }
            }
            walk_plan_exprs(input, f);
        }
        Node::Sort { input, keys } => {
            for (e, _) in keys {
                e.visit(f);
            }
            walk_plan_exprs(input, f);
        }
        Node::Project { input, exprs } => {
            for e in exprs {
                e.visit(f);
            }
            walk_plan_exprs(input, f);
        }
        Node::Distinct { input } => walk_plan_exprs(input, f),
        Node::Limit {
            input,
            limit,
            offset,
        } => {
            if let Some(e) = limit {
                e.visit(f);
            }
            if let Some(e) = offset {
                e.visit(f);
            }
            walk_plan_exprs(input, f);
        }
    }
}

/// The largest `OuterColumn` index a subplan references, if any.
fn max_outer_column_of_plan(plan: &SelectPlan) -> Option<usize> {
    let mut max: Option<usize> = None;
    walk_plan_exprs(&plan.root, &mut |e| {
        if let Expr::OuterColumn(i) = e {
            max = Some(max.map_or(*i, |m| m.max(*i)));
        }
    });
    max
}

fn contains_aggregate(e: &Expr) -> bool {
    let mut has = false;
    e.visit(&mut |x| {
        if let Expr::Func { name, .. } = x {
            if agg_func(name).is_some() {
                has = true;
            }
        }
    });
    has
}

fn contains_aggregate_unbound(e: &Expr) -> bool {
    contains_aggregate(e)
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        "AVG" => Some(AggFunc::Avg),
        _ => None,
    }
}

/// Rewrites a bound select-item expression for evaluation over the aggregate
/// output row: group-by subexpressions become columns `0..G`, aggregate calls
/// become columns `G..G+A` (appending to `aggs` as encountered).
fn rewrite_for_aggregate(expr: Expr, group_by: &[Expr], aggs: &mut Vec<AggCall>) -> DbResult<Expr> {
    // Check group-by match at every level, starting with the whole expression.
    if let Some(i) = group_by.iter().position(|g| *g == expr) {
        return Ok(Expr::Column(i));
    }
    match expr {
        Expr::Func {
            name,
            mut args,
            star,
        } => {
            let Some(func) = agg_func(&name) else {
                return Err(DbError::Unsupported(format!("scalar function `{name}`")));
            };
            let call = if star {
                if func != AggFunc::Count {
                    return Err(DbError::Schema(format!("{name}(*) is not valid")));
                }
                AggCall {
                    func: AggFunc::CountStar,
                    arg: None,
                }
            } else {
                if args.len() != 1 {
                    return Err(DbError::Schema(format!(
                        "{name} takes exactly one argument"
                    )));
                }
                let arg = args.pop().expect("checked length");
                if contains_aggregate(&arg) {
                    return Err(DbError::Schema("nested aggregates".into()));
                }
                AggCall {
                    func,
                    arg: Some(arg),
                }
            };
            let idx = match aggs.iter().position(|a| *a == call) {
                Some(i) => i,
                None => {
                    aggs.push(call);
                    aggs.len() - 1
                }
            };
            Ok(Expr::Column(group_by.len() + idx))
        }
        Expr::Column(_) | Expr::OuterColumn(_) => Err(DbError::Schema(
            "column must appear in GROUP BY or inside an aggregate".into(),
        )),
        Expr::Literal(v) => Ok(Expr::Literal(v)),
        Expr::Param(i) => Ok(Expr::Param(i)),
        Expr::Unary(op, e) => Ok(Expr::Unary(
            op,
            Box::new(rewrite_for_aggregate(*e, group_by, aggs)?),
        )),
        Expr::Binary(op, l, r) => Ok(Expr::Binary(
            op,
            Box::new(rewrite_for_aggregate(*l, group_by, aggs)?),
            Box::new(rewrite_for_aggregate(*r, group_by, aggs)?),
        )),
        other => Err(DbError::Unsupported(format!(
            "expression {other:?} in an aggregate query"
        ))),
    }
}

/// Extracts the best index access path for one table, removing the conjuncts
/// it consumes from `conjuncts`.
///
/// `offset`/`width` locate the table's columns inside the combined row;
/// `left_width` is the width of the already-joined prefix (bound expressions
/// may reference only columns `< left_width`).
fn choose_access_path(
    table: &crate::catalog::Table,
    offset: usize,
    width: usize,
    left_width: usize,
    conjuncts: &mut Vec<Expr>,
) -> AccessPath {
    // Candidate sargable conjuncts per local column: (conjunct idx, op, bound expr).
    struct Sarg {
        conjunct: usize,
        col: usize, // local column index
        op: BinOp,
        bound: Expr,
        /// Second bound for BETWEEN.
        bound2: Option<Expr>,
    }
    let local_col = |e: &Expr| -> Option<usize> {
        if let Expr::Column(i) = e {
            if *i >= offset && *i < offset + width {
                return Some(*i - offset);
            }
        }
        None
    };
    let is_available = |e: &Expr| max_column(e).is_none_or(|m| m < left_width);
    let mut sargs: Vec<Sarg> = Vec::new();
    // `MULTIRANGE(col, batch)` predicates: (conjunct idx, local col, batch).
    let mut mr_sargs: Vec<(usize, usize, Expr)> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        match c {
            Expr::Func { name, args, star } if name == "MULTIRANGE" && !*star => {
                if let [col_expr, batch] = args.as_slice() {
                    if let (Some(col), true) = (local_col(col_expr), is_available(batch)) {
                        mr_sargs.push((ci, col, batch.clone()));
                    }
                }
            }
            Expr::Binary(op, l, r)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                if let (Some(col), true) = (local_col(l), is_available(r)) {
                    sargs.push(Sarg {
                        conjunct: ci,
                        col,
                        op: *op,
                        bound: (**r).clone(),
                        bound2: None,
                    });
                } else if let (Some(col), true) = (local_col(r), is_available(l)) {
                    let flipped = match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        other => *other,
                    };
                    sargs.push(Sarg {
                        conjunct: ci,
                        col,
                        op: flipped,
                        bound: (**l).clone(),
                        bound2: None,
                    });
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let (Some(col), true, true) =
                    (local_col(expr), is_available(low), is_available(high))
                {
                    sargs.push(Sarg {
                        conjunct: ci,
                        col,
                        op: BinOp::Ge, // plus Le via bound2
                        bound: (**low).clone(),
                        bound2: Some((**high).clone()),
                    });
                }
            }
            _ => {}
        }
    }
    if sargs.is_empty() && mr_sargs.is_empty() {
        return AccessPath::FullScan;
    }
    // Candidate indexes: PK (None) and secondaries.
    let mut candidates: Vec<(Option<usize>, &[usize])> = Vec::new();
    if !table.schema.primary_key.is_empty() {
        candidates.push((None, &table.schema.primary_key));
    }
    for (i, (def, _)) in table.indexes.iter().enumerate() {
        candidates.push((Some(i), &def.columns));
    }
    /// One candidate plan: index id, consumed eq conjunct ids, lower/upper
    /// range conjunct ids, and its score.
    struct Candidate {
        idx: Option<usize>,
        eq_ids: Vec<usize>,
        lower_id: Option<usize>,
        upper_id: Option<usize>,
        mr_id: Option<usize>,
        score: usize,
    }
    let mut best: Option<Candidate> = None;
    for (idx_id, cols) in candidates {
        let mut eq_ids = Vec::new();
        let mut lower_id = None;
        let mut upper_id = None;
        let mut mr_id = None;
        for &col in cols {
            if let Some(s) = sargs
                .iter()
                .find(|s| s.col == col && s.op == BinOp::Eq && !eq_ids.contains(&s.conjunct))
            {
                eq_ids.push(s.conjunct);
                continue;
            }
            // No equality on this column: a range batch beats single
            // bounds (it pins the column exactly); otherwise take at most
            // one lower and one upper bound (a BETWEEN supplies both at
            // once). Either way the prefix ends here.
            if let Some((ci, _, _)) = mr_sargs.iter().find(|(_, c, _)| *c == col) {
                mr_id = Some(*ci);
                break;
            }
            lower_id = sargs
                .iter()
                .find(|s| s.col == col && matches!(s.op, BinOp::Gt | BinOp::Ge))
                .map(|s| s.conjunct);
            upper_id = sargs
                .iter()
                .find(|s| {
                    s.col == col
                        && (matches!(s.op, BinOp::Lt | BinOp::Le)
                            || (s.op == BinOp::Ge
                                && s.bound2.is_some()
                                && Some(s.conjunct) == lower_id))
                })
                .map(|s| s.conjunct);
            break;
        }
        let score = eq_ids.len() * 2
            + usize::from(lower_id.is_some())
            + usize::from(upper_id.is_some())
            + 3 * usize::from(mr_id.is_some());
        if score > 0 && best.as_ref().is_none_or(|b| score > b.score) {
            best = Some(Candidate {
                idx: idx_id,
                eq_ids,
                lower_id,
                upper_id,
                mr_id,
                score,
            });
        }
    }
    let Some(Candidate {
        idx: idx_id,
        eq_ids,
        lower_id,
        upper_id,
        mr_id,
        ..
    }) = best
    else {
        return AccessPath::FullScan;
    };
    // Assemble the path and drop consumed conjuncts.
    let mut eq = Vec::new();
    for &ci in &eq_ids {
        let s = sargs
            .iter()
            .find(|s| s.conjunct == ci && s.op == BinOp::Eq)
            .expect("recorded above");
        eq.push(s.bound.clone());
    }
    if let Some(mr_ci) = mr_id {
        let (_, _, ranges) = mr_sargs
            .iter()
            .find(|(ci, _, _)| *ci == mr_ci)
            .expect("recorded above");
        let ranges = ranges.clone();
        let mut consumed: Vec<usize> = eq_ids;
        consumed.push(mr_ci);
        consumed.sort_unstable();
        consumed.dedup();
        for ci in consumed.into_iter().rev() {
            conjuncts.remove(ci);
        }
        return AccessPath::MultiRange {
            index: idx_id,
            eq,
            ranges,
        };
    }
    let mut lower = None;
    let mut upper = None;
    if let Some(ci) = lower_id {
        let s = sargs
            .iter()
            .find(|s| s.conjunct == ci && matches!(s.op, BinOp::Gt | BinOp::Ge))
            .expect("recorded above");
        lower = Some((s.bound.clone(), s.op == BinOp::Ge));
        if let Some(b2) = &s.bound2 {
            // BETWEEN: both bounds come from the same conjunct.
            upper = Some((b2.clone(), true));
        }
    }
    if upper.is_none() {
        if let Some(ci) = upper_id {
            let s = sargs
                .iter()
                .find(|s| s.conjunct == ci && matches!(s.op, BinOp::Lt | BinOp::Le))
                .expect("recorded above");
            upper = Some((s.bound.clone(), s.op == BinOp::Le));
        }
    }
    let mut consumed: Vec<usize> = eq_ids;
    consumed.extend(lower_id);
    consumed.extend(upper_id);
    consumed.sort_unstable();
    consumed.dedup();
    for ci in consumed.into_iter().rev() {
        conjuncts.remove(ci);
    }
    AccessPath::Index {
        index: idx_id,
        eq,
        lower,
        upper,
        reverse: false,
    }
}

/// `true` if the plan already delivers rows in `keys` order: the keys must be
/// ascending (or all descending) columns matching the first table's index
/// scan order after its equality prefix. Left-deep joins, filters, and hash
/// probes preserve left-input order in this engine.
fn sort_satisfied_by_plan(catalog: &Catalog, node: &Node, keys: &[(Expr, bool)]) -> bool {
    // Locate the leftmost scan.
    let mut cur = node;
    loop {
        match cur {
            Node::Scan(access) => {
                // A multi-range scan emits its merged, disjoint ranges in
                // ascending order, so its output is ordered exactly like a
                // forward single-range scan with the same equality prefix.
                let (index, eq, reverse) = match &access.path {
                    AccessPath::Index {
                        index, eq, reverse, ..
                    } => (index, eq, reverse),
                    AccessPath::MultiRange { index, eq, .. } => (index, eq, &false),
                    AccessPath::FullScan => return false,
                };
                let Ok(table) = catalog.table(&access.table) else {
                    return false;
                };
                let index_cols: &[usize] = match index {
                    None => &table.schema.primary_key,
                    Some(i) => &table.indexes[*i].0.columns,
                };
                // Keys must match index columns starting right after the
                // equality prefix, all in the same direction (the first
                // table sits at combined-row offset 0).
                if keys.is_empty() {
                    return true;
                }
                let all_desc = keys.iter().all(|(_, d)| *d);
                let all_asc = keys.iter().all(|(_, d)| !*d);
                if !(all_asc || all_desc) || (all_desc && !*reverse) || (all_asc && *reverse) {
                    // Direction mismatch: a descending request over an
                    // ascending scan is not satisfied (the planner does not
                    // currently flip scans to serve ORDER BY ... DESC).
                    return false;
                }
                let wanted: Vec<usize> = keys
                    .iter()
                    .map(|(e, _)| match e {
                        Expr::Column(i) => Some(*i),
                        _ => None,
                    })
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_default();
                if wanted.is_empty() && !keys.is_empty() {
                    return false;
                }
                let tail = &index_cols[eq.len().min(index_cols.len())..];
                if wanted.len() > tail.len() {
                    return false;
                }
                return tail.iter().zip(&wanted).all(|(a, b)| a == b);
            }
            Node::Filter { input, .. } => cur = input,
            Node::Join { left, .. } => cur = left,
            _ => return false,
        }
    }
}

/// Output column name for an unaliased item.
fn display_name(e: &Expr) -> String {
    match e {
        Expr::Name(n) => n
            .rsplit_once('.')
            .map(|(_, c)| c.to_string())
            .unwrap_or_else(|| n.clone()),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => "expr".to_string(),
    }
}

/// Plans a single-table access for UPDATE/DELETE: returns the access path
/// and the residual predicate (bound against the table's row).
pub fn plan_table_access(
    catalog: &Catalog,
    table_name: &str,
    where_clause: Option<&Expr>,
) -> DbResult<(AccessPath, Option<Expr>, Scope)> {
    let table = catalog.table(table_name)?;
    let mut scope = Scope::default();
    for c in &table.schema.columns {
        scope.cols.push((table_name.to_string(), c.name.clone()));
    }
    let mut conjuncts = Vec::new();
    if let Some(w) = where_clause {
        for c in w.clone().conjuncts() {
            let bound = c.map(&mut |e| match e {
                Expr::Name(n) => scope.resolve(&n).map(Expr::Column),
                other => Ok(other),
            })?;
            conjuncts.push(bound);
        }
    }
    let width = table.schema.columns.len();
    let path = choose_access_path(table, 0, width, 0, &mut conjuncts);
    Ok((path, Expr::conjoin(conjuncts), scope))
}

// ---------------------------------------------------------------------
// Plan rendering (EXPLAIN / EXPLAIN ANALYZE)
// ---------------------------------------------------------------------

/// Renders a plan tree as indented text, one line per operator. With a
/// [`Profiler`](crate::exec::Profiler) from an `EXPLAIN ANALYZE` run over
/// the *same* plan value, each operator is annotated with its actual row
/// count, invocation count, and inclusive elapsed time.
pub fn render_plan(
    catalog: &Catalog,
    plan: &SelectPlan,
    prof: Option<&crate::exec::Profiler>,
) -> Vec<String> {
    let mut lines = Vec::new();
    render_node(catalog, &plan.root, prof, 0, &mut lines);
    if plan.sort_elided {
        lines.push("Note: ORDER BY satisfied by index order (sort elided)".into());
    }
    for (slot, sub) in plan.subplans.iter().enumerate() {
        if sub.columns.is_empty() && matches!(sub.root, Node::OneRow) {
            continue; // inert placeholder for a slot owned by another block
        }
        lines.push(format!("Subplan ${slot}:"));
        render_node(catalog, &sub.root, prof, 1, &mut lines);
    }
    lines
}

/// Renders a bare table access path — the target scan of an `EXPLAIN`ed
/// UPDATE or DELETE.
pub fn render_table_access(catalog: &Catalog, table: &str, path: &AccessPath) -> String {
    render_access(
        catalog,
        &Access {
            table: table.to_string(),
            path: path.clone(),
            width: 0,
        },
    )
}

/// ` (actual rows=... loops=... time=...)` under ANALYZE, empty otherwise.
fn profile_suffix(prof: Option<&crate::exec::Profiler>, node: &Node) -> String {
    let Some(prof) = prof else {
        return String::new();
    };
    match prof.get(node) {
        Some(op) => format!(
            " (actual rows={} loops={} time={:.3?})",
            op.rows_out, op.invocations, op.elapsed
        ),
        None => " (never executed)".into(),
    }
}

/// One access path as text: scan kind, table, index name, and the bound
/// predicates with index column names substituted in.
fn render_access(catalog: &Catalog, a: &Access) -> String {
    match &a.path {
        AccessPath::FullScan => format!("Seq Scan on {}", a.table),
        AccessPath::Index {
            index,
            eq,
            lower,
            upper,
            reverse,
        } => {
            let (index_name, cols): (String, Vec<String>) = match catalog.table(&a.table) {
                Ok(t) => {
                    let (name, col_ids): (String, &[usize]) = match index {
                        None => ("pk".into(), &t.schema.primary_key),
                        Some(i) => (t.indexes[*i].0.name.clone(), &t.indexes[*i].0.columns),
                    };
                    let cols = col_ids
                        .iter()
                        .map(|&c| t.schema.columns[c].name.clone())
                        .collect();
                    (name, cols)
                }
                Err(_) => ("?".into(), Vec::new()),
            };
            let mut preds = Vec::new();
            for (i, e) in eq.iter().enumerate() {
                let col = cols.get(i).cloned().unwrap_or_else(|| format!("key[{i}]"));
                preds.push(format!("{col} = {e}"));
            }
            let range_col = cols
                .get(eq.len())
                .cloned()
                .unwrap_or_else(|| format!("key[{}]", eq.len()));
            if let Some((e, inclusive)) = lower {
                preds.push(format!(
                    "{range_col} {} {e}",
                    if *inclusive { ">=" } else { ">" }
                ));
            }
            if let Some((e, inclusive)) = upper {
                preds.push(format!(
                    "{range_col} {} {e}",
                    if *inclusive { "<=" } else { "<" }
                ));
            }
            let mut s = format!("Index Scan on {} using {index_name}", a.table);
            if !preds.is_empty() {
                s.push_str(&format!(" [{}]", preds.join(" AND ")));
            }
            if *reverse {
                s.push_str(" (reverse)");
            }
            s
        }
        AccessPath::MultiRange { index, eq, ranges } => {
            let (index_name, cols): (String, Vec<String>) = match catalog.table(&a.table) {
                Ok(t) => {
                    let (name, col_ids): (String, &[usize]) = match index {
                        None => ("pk".into(), &t.schema.primary_key),
                        Some(i) => (t.indexes[*i].0.name.clone(), &t.indexes[*i].0.columns),
                    };
                    let cols = col_ids
                        .iter()
                        .map(|&c| t.schema.columns[c].name.clone())
                        .collect();
                    (name, cols)
                }
                Err(_) => ("?".into(), Vec::new()),
            };
            let mut preds = Vec::new();
            for (i, e) in eq.iter().enumerate() {
                let col = cols.get(i).cloned().unwrap_or_else(|| format!("key[{i}]"));
                preds.push(format!("{col} = {e}"));
            }
            let range_col = cols
                .get(eq.len())
                .cloned()
                .unwrap_or_else(|| format!("key[{}]", eq.len()));
            preds.push(format!("{range_col} IN RANGES({ranges})"));
            format!(
                "Multi-Range Index Scan on {} using {index_name} [{}]",
                a.table,
                preds.join(" AND ")
            )
        }
    }
}

fn render_agg(call: &AggCall) -> String {
    let name = match call.func {
        AggFunc::CountStar => return "COUNT(*)".into(),
        AggFunc::Count => "COUNT",
        AggFunc::Sum => "SUM",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
        AggFunc::Avg => "AVG",
    };
    match &call.arg {
        Some(e) => format!("{name}({e})"),
        None => format!("{name}()"),
    }
}

fn render_node(
    catalog: &Catalog,
    node: &Node,
    prof: Option<&crate::exec::Profiler>,
    depth: usize,
    out: &mut Vec<String>,
) {
    let pad = "  ".repeat(depth);
    let suffix = profile_suffix(prof, node);
    match node {
        Node::OneRow => out.push(format!("{pad}Result (one row){suffix}")),
        Node::Scan(a) => out.push(format!("{pad}{}{suffix}", render_access(catalog, a))),
        Node::Filter { input, pred } => {
            out.push(format!("{pad}Filter [{pred}]{suffix}"));
            render_node(catalog, input, prof, depth + 1, out);
        }
        Node::Join {
            left,
            right,
            residual,
            hash_keys,
        } => {
            let strategy = if hash_keys.is_some() {
                "Hash Join"
            } else if matches!(
                right.path,
                AccessPath::Index { .. } | AccessPath::MultiRange { .. }
            ) {
                "Index Nested-Loop Join"
            } else {
                "Nested-Loop Join"
            };
            let mut line = format!("{pad}{strategy}");
            if let Some((lk, rk)) = hash_keys {
                let keys: Vec<String> = lk
                    .iter()
                    .zip(rk)
                    .map(|(l, r)| format!("{l} = inner.{r}"))
                    .collect();
                line.push_str(&format!(" [{}]", keys.join(" AND ")));
            }
            if let Some(r) = residual {
                line.push_str(&format!(" residual [{r}]"));
            }
            line.push_str(&suffix);
            out.push(line);
            render_node(catalog, left, prof, depth + 1, out);
            out.push(format!(
                "{}-> {}",
                "  ".repeat(depth + 1),
                render_access(catalog, right)
            ));
        }
        Node::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut line = format!("{pad}Aggregate");
            if !group_by.is_empty() {
                let gb: Vec<String> = group_by.iter().map(Expr::to_string).collect();
                line.push_str(&format!(" group by [{}]", gb.join(", ")));
            }
            if !aggs.is_empty() {
                let ag: Vec<String> = aggs.iter().map(render_agg).collect();
                line.push_str(&format!(" [{}]", ag.join(", ")));
            }
            line.push_str(&suffix);
            out.push(line);
            render_node(catalog, input, prof, depth + 1, out);
        }
        Node::Sort { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|(e, desc)| format!("{e}{}", if *desc { " DESC" } else { "" }))
                .collect();
            out.push(format!("{pad}Sort [{}]{suffix}", ks.join(", ")));
            render_node(catalog, input, prof, depth + 1, out);
        }
        Node::Project { input, exprs } => {
            let es: Vec<String> = exprs.iter().map(Expr::to_string).collect();
            out.push(format!("{pad}Project [{}]{suffix}", es.join(", ")));
            render_node(catalog, input, prof, depth + 1, out);
        }
        Node::Distinct { input } => {
            out.push(format!("{pad}Distinct{suffix}"));
            render_node(catalog, input, prof, depth + 1, out);
        }
        Node::Limit {
            input,
            limit,
            offset,
        } => {
            let mut line = format!("{pad}Limit");
            if let Some(e) = limit {
                line.push_str(&format!(" [{e}]"));
            }
            if let Some(e) = offset {
                line.push_str(&format!(" offset [{e}]"));
            }
            line.push_str(&suffix);
            out.push(line);
            render_node(catalog, input, prof, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, IndexDef, TableSchema};
    use crate::sql::parse;
    use crate::sql::Stmt;
    use crate::storage::Pager;
    use crate::value::{DataType, Value};

    fn catalog() -> (Pager, Catalog) {
        let pager = Pager::in_memory();
        let mut c = Catalog::new();
        c.create_table(TableSchema {
            name: "node".into(),
            columns: ["doc", "pos", "parent", "depth"]
                .iter()
                .map(|n| ColumnDef {
                    name: (*n).into(),
                    ty: DataType::Int,
                    nullable: true,
                })
                .chain(std::iter::once(ColumnDef {
                    name: "tag".into(),
                    ty: DataType::Text,
                    nullable: true,
                }))
                .collect(),
            primary_key: vec![0, 1],
        })
        .unwrap();
        c.create_index(
            &pager,
            "node",
            IndexDef {
                name: "node_parent".into(),
                columns: vec![0, 2, 1],
                unique: false,
            },
        )
        .unwrap();
        (pager, c)
    }

    fn plan(c: &Catalog, sql: &str) -> SelectPlan {
        let p = parse(sql).unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        plan_select(c, &s, &p.subqueries, None).unwrap()
    }

    fn find_scan(node: &Node) -> &Access {
        match node {
            Node::Scan(a) => a,
            Node::Filter { input, .. }
            | Node::Sort { input, .. }
            | Node::Project { input, .. }
            | Node::Distinct { input }
            | Node::Limit { input, .. }
            | Node::Aggregate { input, .. } => find_scan(input),
            Node::Join { left, .. } => find_scan(left),
            Node::OneRow => panic!("no scan"),
        }
    }

    #[test]
    fn pk_equality_prefix_plus_range_uses_index() {
        let (_p, c) = catalog();
        let plan = plan(
            &c,
            "SELECT pos FROM node WHERE doc = 1 AND pos >= 10 AND pos < 20",
        );
        let scan = find_scan(&plan.root);
        let AccessPath::Index {
            index,
            eq,
            lower,
            upper,
            ..
        } = &scan.path
        else {
            panic!("expected index scan, got {:?}", scan.path)
        };
        assert_eq!(*index, None, "primary key");
        assert_eq!(eq.len(), 1);
        assert!(lower.is_some() && upper.is_none() || lower.is_some());
        assert!(lower.as_ref().unwrap().1, "inclusive lower");
        let _ = upper;
    }

    #[test]
    fn secondary_index_longest_prefix_wins() {
        let (_p, c) = catalog();
        let plan = plan(&c, "SELECT pos FROM node WHERE doc = 1 AND parent = 5");
        let scan = find_scan(&plan.root);
        let AccessPath::Index { index, eq, .. } = &scan.path else {
            panic!("expected index scan")
        };
        assert_eq!(
            *index,
            Some(0),
            "node_parent (doc,parent,pos) matches 2 eqs"
        );
        assert_eq!(eq.len(), 2);
    }

    #[test]
    fn no_predicate_is_full_scan() {
        let (_p, c) = catalog();
        let plan = plan(&c, "SELECT pos FROM node");
        assert_eq!(find_scan(&plan.root).path, AccessPath::FullScan);
    }

    #[test]
    fn join_becomes_index_nested_loop() {
        let (_p, c) = catalog();
        let plan = plan(
            &c,
            "SELECT b.pos FROM node a, node b WHERE a.doc = 1 AND a.tag = 'x' AND b.doc = a.doc AND b.parent = a.pos",
        );
        let Node::Project { input, .. } = &plan.root else {
            panic!()
        };
        let Node::Join { right, .. } = &**input else {
            panic!("expected join, got {input:?}")
        };
        let AccessPath::Index { index, eq, .. } = &right.path else {
            panic!("inner should be an index scan")
        };
        assert_eq!(*index, Some(0));
        assert_eq!(eq.len(), 2, "doc and parent bound from outer row");
    }

    #[test]
    fn order_by_pk_after_eq_prefix_eliminates_sort() {
        let (_p, c) = catalog();
        let plan = plan(&c, "SELECT pos FROM node WHERE doc = 1 ORDER BY pos");
        fn has_sort(n: &Node) -> bool {
            match n {
                Node::Sort { .. } => true,
                Node::Filter { input, .. }
                | Node::Project { input, .. }
                | Node::Distinct { input }
                | Node::Limit { input, .. }
                | Node::Aggregate { input, .. } => has_sort(input),
                Node::Join { left, .. } => has_sort(left),
                _ => false,
            }
        }
        assert!(!has_sort(&plan.root), "sort should be eliminated: {plan:?}");
        // But ordering by a non-index column keeps the sort.
        let plan2 = plan2_helper(&c);
        assert!(has_sort(&plan2.root));
    }

    fn plan2_helper(c: &Catalog) -> SelectPlan {
        let p = parse("SELECT pos FROM node WHERE doc = 1 ORDER BY tag").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        plan_select(c, &s, &p.subqueries, None).unwrap()
    }

    #[test]
    fn aggregate_rewrite() {
        let (_p, c) = catalog();
        let plan = plan(&c, "SELECT tag, COUNT(*), MIN(pos) FROM node GROUP BY tag");
        let Node::Project { input, exprs } = &plan.root else {
            panic!()
        };
        let Node::Aggregate { group_by, aggs, .. } = &**input else {
            panic!()
        };
        assert_eq!(group_by.len(), 1);
        assert_eq!(aggs.len(), 2);
        assert_eq!(exprs[0], Expr::Column(0));
        assert_eq!(exprs[1], Expr::Column(1));
        assert_eq!(exprs[2], Expr::Column(2));
        assert_eq!(plan.columns, vec!["tag", "count", "min"]);
    }

    #[test]
    fn aggregate_without_group_by_rejects_bare_columns() {
        let (_p, c) = catalog();
        let p = parse("SELECT tag, COUNT(*) FROM node").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert!(plan_select(&c, &s, &p.subqueries, None).is_err());
    }

    #[test]
    fn correlated_subquery_binds_outer_columns() {
        let (_p, c) = catalog();
        let plan = plan(
            &c,
            "SELECT pos FROM node x WHERE 2 = (SELECT COUNT(*) FROM node y WHERE y.doc = x.doc AND y.parent = x.parent AND y.pos < x.pos)",
        );
        assert_eq!(plan.subplans.len(), 1);
        // The subplan's scan must have outer-column bounds.
        let sub = &plan.subplans[0];
        let mut saw_outer = false;
        fn visit_exprs(n: &Node, f: &mut impl FnMut(&Expr)) {
            match n {
                Node::Scan(a) | Node::Join { right: a, .. } => {
                    if let AccessPath::Index {
                        eq, lower, upper, ..
                    } = &a.path
                    {
                        for e in eq {
                            e.visit(f);
                        }
                        if let Some((e, _)) = lower {
                            e.visit(f);
                        }
                        if let Some((e, _)) = upper {
                            e.visit(f);
                        }
                    }
                    if let Node::Join { left, residual, .. } = n {
                        visit_exprs(left, f);
                        if let Some(r) = residual {
                            r.visit(f);
                        }
                    }
                }
                Node::Filter { input, pred } => {
                    pred.visit(f);
                    visit_exprs(input, f);
                }
                Node::Project { input, exprs } => {
                    for e in exprs {
                        e.visit(f);
                    }
                    visit_exprs(input, f);
                }
                Node::Aggregate {
                    input,
                    group_by,
                    aggs,
                } => {
                    for e in group_by {
                        e.visit(f);
                    }
                    for a in aggs {
                        if let Some(e) = &a.arg {
                            e.visit(f);
                        }
                    }
                    visit_exprs(input, f);
                }
                Node::Sort { input, keys } => {
                    for (e, _) in keys {
                        e.visit(f);
                    }
                    visit_exprs(input, f);
                }
                Node::Distinct { input } | Node::Limit { input, .. } => visit_exprs(input, f),
                Node::OneRow => {}
            }
        }
        visit_exprs(&sub.root, &mut |e| {
            if matches!(e, Expr::OuterColumn(_)) {
                saw_outer = true;
            }
        });
        assert!(saw_outer, "correlation must bind to OuterColumn: {sub:?}");
    }

    #[test]
    fn unknown_names_error() {
        let (_p, c) = catalog();
        let p = parse("SELECT nope FROM node").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert!(matches!(
            plan_select(&c, &s, &p.subqueries, None),
            Err(DbError::Unknown(_))
        ));
        let p = parse("SELECT pos FROM nope").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert!(plan_select(&c, &s, &p.subqueries, None).is_err());
    }

    #[test]
    fn ambiguous_column_error() {
        let (_p, c) = catalog();
        let p = parse("SELECT pos FROM node a, node b").unwrap();
        let Stmt::Select(s) = p.stmt else { panic!() };
        assert!(matches!(
            plan_select(&c, &s, &p.subqueries, None),
            Err(DbError::Schema(_))
        ));
    }

    #[test]
    fn order_by_position_and_alias() {
        let (_p, c) = catalog();
        let plan = plan(&c, "SELECT pos AS p, tag FROM node ORDER BY 2, p DESC");
        let Node::Project { input, .. } = &plan.root else {
            panic!()
        };
        let Node::Sort { keys, .. } = &**input else {
            panic!("expected sort")
        };
        assert_eq!(keys.len(), 2);
        assert!(!keys[0].1);
        assert!(keys[1].1);
    }

    #[test]
    fn plan_table_access_for_updates() {
        let (_p, c) = catalog();
        let parsed = parse("SELECT 1 FROM node WHERE doc = 1 AND pos > 100 AND tag = 'x'").unwrap();
        let Stmt::Select(s) = parsed.stmt else {
            panic!()
        };
        let (path, residual, _) = plan_table_access(&c, "node", s.where_clause.as_ref()).unwrap();
        let AccessPath::Index { eq, lower, .. } = path else {
            panic!()
        };
        assert_eq!(eq, vec![Expr::Literal(Value::Int(1))]);
        assert!(!lower.unwrap().1, "exclusive >");
        assert!(residual.is_some(), "tag predicate is residual");
    }
}
