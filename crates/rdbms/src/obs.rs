//! Engine observability: counters, duration histograms, timing spans, a
//! global snapshot API, wait-site lock attribution, and a configurable
//! slow-query log.
//!
//! Everything here is built on `std` only (the crate keeps an empty
//! `[dependencies]` section). The whole layer sits behind a single
//! process-wide enable flag — when disabled, the per-statement overhead in
//! [`crate::Database::run`] is one relaxed atomic load, so hot paths pay
//! essentially nothing for the instrumentation.
//!
//! # Sharding
//!
//! The registry's hot path is *per-thread sharded*: every recording thread
//! owns a private [`Shard`] of counters and histograms (registered once,
//! on that thread's first record, under a mutex the hot path never takes
//! again), and [`Registry::snapshot`] aggregates across all shards. Eight
//! readers bumping `statements` therefore touch eight distinct cache
//! lines — the metrics layer cannot serialize, or even slow, the
//! concurrent read path it is supposed to measure. Counters are monotonic
//! and shards are never deregistered, so a shard whose thread has exited
//! keeps contributing its final values.
//!
//! # Wait sites
//!
//! Every contended latch acquisition (see [`crate::latch`]) is attributed
//! to a named [`WaitSite`] — which subsystem's lock blocked — with a
//! per-site wait-duration histogram. `snapshot().lock_waits_by_site`
//! answers "who is waiting on what" directly, which is the measurement the
//! ROADMAP's lock-splitting items need.
//!
//! The registry is process-global on purpose: it aggregates across every
//! [`crate::Database`] in the process (per-database numbers live in
//! [`crate::ExecStats`] / [`crate::Database::total_stats`] instead). Tests
//! that read it must therefore assert monotonic inequalities, not exact
//! values.

use crate::exec::ExecStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// A monotonically increasing event counter (relaxed atomics; cheap enough
/// to bump from any path).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets in a [`DurationHistogram`] (covers 1 ns to ~18 min).
const HIST_BUCKETS: usize = 40;

/// A lock-free histogram of durations with power-of-two nanosecond buckets
/// (bucket `i` holds durations in `[2^i, 2^(i+1))` ns), plus running count,
/// sum, and max for exact averages.
#[derive(Debug)]
pub struct DurationHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub const fn new() -> DurationHistogram {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed only
        const ZERO: AtomicU64 = AtomicU64::new(0);
        DurationHistogram {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds this histogram's current contents into `acc` (used to merge
    /// per-thread shards at snapshot time).
    fn accumulate(&self, acc: &mut HistAccum) {
        for (a, b) in acc.buckets.iter_mut().zip(self.buckets.iter()) {
            *a += b.load(Ordering::Relaxed);
        }
        acc.count += self.count.load(Ordering::Relaxed);
        acc.sum_ns += self.sum_ns.load(Ordering::Relaxed);
        acc.max_ns = acc.max_ns.max(self.max_ns.load(Ordering::Relaxed));
    }

    /// A plain-value snapshot with approximate quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut acc = HistAccum::default();
        self.accumulate(&mut acc);
        acc.snapshot()
    }
}

/// Plain-value accumulation of one or more histograms (shard merging).
#[derive(Debug)]
struct HistAccum {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for HistAccum {
    fn default() -> Self {
        HistAccum {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistAccum {
    fn snapshot(&self) -> HistogramSnapshot {
        let quantile = |q: f64| -> Duration {
            if self.count == 0 {
                return Duration::ZERO;
            }
            let target = ((self.count as f64) * q).ceil() as u64;
            let mut seen = 0u64;
            for (i, n) in self.buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Upper edge of the bucket, clamped to the true max so
                    // quantiles never exceed an observed value (and
                    // p50 ≤ p95 ≤ max holds by construction).
                    let edge = 1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX);
                    return Duration::from_nanos(edge.min(self.max_ns));
                }
            }
            Duration::from_nanos(self.max_ns)
        };
        HistogramSnapshot {
            count: self.count,
            total: Duration::from_nanos(self.sum_ns),
            max: Duration::from_nanos(self.max_ns),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`DurationHistogram`]. Quantiles are
/// bucket-resolution estimates (upper bucket edge, clamped to `max`),
/// not exact.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded durations.
    pub count: u64,
    /// Sum of all recorded durations.
    pub total: Duration,
    /// Largest recorded duration.
    pub max: Duration,
    /// Approximate median.
    pub p50: Duration,
    /// Approximate 95th percentile.
    pub p95: Duration,
    /// Approximate 99th percentile.
    pub p99: Duration,
}

/// A timing span: starts on construction, records its elapsed time into a
/// histogram when dropped. [`Span::enter`] consults the global registry's
/// enable flag; while disabled it costs one relaxed load plus a branch and
/// the returned span is inert (it never reads the clock or touches the
/// histogram).
///
/// ```
/// use ordxml_rdbms::obs;
/// let hist = obs::DurationHistogram::new();
/// {
///     let _span = obs::Span::enter(&hist);
///     // ... timed work ...
/// }
/// assert_eq!(hist.snapshot().count, 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    inner: Option<(&'a DurationHistogram, Instant)>,
}

impl<'a> Span<'a> {
    /// Starts a span that reports into `hist` if the global registry is
    /// enabled; otherwise returns an inert span.
    pub fn enter(hist: &'a DurationHistogram) -> Span<'a> {
        Span::enter_if(registry().enabled(), hist)
    }

    /// Starts a span only when `enabled` is true — the caller supplies the
    /// flag (e.g. a private registry's, or a precomputed one hoisted out of
    /// a loop). A disabled span is a `None` and records nothing.
    pub fn enter_if(enabled: bool, hist: &'a DurationHistogram) -> Span<'a> {
        Span {
            inner: if enabled {
                Some((hist, Instant::now()))
            } else {
                None
            },
        }
    }

    /// Elapsed time so far, without ending the span ([`Duration::ZERO`]
    /// for an inert span).
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map(|(_, start)| start.elapsed())
            .unwrap_or(Duration::ZERO)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record(start.elapsed());
        }
    }
}

/// One statement captured by the slow-query log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The SQL text as submitted.
    pub sql: String,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Rows returned (SELECT) or affected (writes).
    pub rows: u64,
    /// The statement's merged execution counters.
    pub stats: ExecStats,
}

/// Capacity of the slow-query ring buffer.
const SLOW_LOG_CAP: usize = 64;

/// The named subsystems whose latches [`crate::latch`] attributes
/// contended acquisitions to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitSite {
    /// Pager backend (in-memory page table `RwLock` or file-backend mutex).
    Backend,
    /// Per-database prepared-plan cache.
    PlanCache,
    /// Write-ahead-log state.
    Wal,
    /// Transaction state (active-txn bookkeeping in the pager).
    Txn,
    /// XML store schema/state latch (`XmlStore::inner`).
    Store,
    /// Observability's own locks (slow-query log). Sharded counters mean
    /// this site stays at zero on the read path.
    Obs,
    /// Statement-trace capture buffers in [`crate::Database`].
    Trace,
    /// Epoch-published snapshot cells (committed page maps, committed
    /// database state, store snapshots). Publish-side collisions land here
    /// so they never count against the reader-facing sites.
    Snapshot,
}

impl WaitSite {
    /// Number of wait sites (array dimension for per-site metrics).
    pub const COUNT: usize = 8;

    /// Every site, in the order used by per-site arrays.
    pub const ALL: [WaitSite; WaitSite::COUNT] = [
        WaitSite::Backend,
        WaitSite::PlanCache,
        WaitSite::Wal,
        WaitSite::Txn,
        WaitSite::Store,
        WaitSite::Obs,
        WaitSite::Trace,
        WaitSite::Snapshot,
    ];

    /// Stable lowercase name (report column suffixes, trace labels).
    pub fn name(self) -> &'static str {
        match self {
            WaitSite::Backend => "backend",
            WaitSite::PlanCache => "plan_cache",
            WaitSite::Wal => "wal",
            WaitSite::Txn => "txn",
            WaitSite::Store => "store",
            WaitSite::Obs => "obs",
            WaitSite::Trace => "trace",
            WaitSite::Snapshot => "snapshot",
        }
    }

    fn index(self) -> usize {
        match self {
            WaitSite::Backend => 0,
            WaitSite::PlanCache => 1,
            WaitSite::Wal => 2,
            WaitSite::Txn => 3,
            WaitSite::Store => 4,
            WaitSite::Obs => 5,
            WaitSite::Trace => 6,
            WaitSite::Snapshot => 7,
        }
    }
}

/// Indices into a shard's counter array.
#[derive(Clone, Copy)]
enum Metric {
    Statements,
    StatementErrors,
    SlowStatements,
    PlanCacheHits,
    PlanCacheMisses,
    BtreeDescents,
    BtreeDescentReuses,
    WalFrames,
    TxnCommits,
    TxnRollbacks,
    Recoveries,
    QueriesTimedOut,
    QueriesCanceled,
    ReadRetries,
    DegradedEntries,
    DegradedRejects,
    ServeSessions,
    ServeRequests,
    SqlReadFallbacks,
}

const NMETRICS: usize = 19;

/// One thread's private metric cell. All fields are atomics only so the
/// snapshot path can read them concurrently; the owning thread's writes
/// are uncontended.
#[derive(Debug)]
struct Shard {
    metrics: [AtomicU64; NMETRICS],
    read_latency: DurationHistogram,
    write_latency: DurationHistogram,
    wait_counts: [AtomicU64; WaitSite::COUNT],
    wait_latency: [DurationHistogram; WaitSite::COUNT],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            metrics: std::array::from_fn(|_| AtomicU64::new(0)),
            read_latency: DurationHistogram::new(),
            write_latency: DurationHistogram::new(),
            wait_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            wait_latency: std::array::from_fn(|_| DurationHistogram::new()),
        }
    }

    fn bump(&self, m: Metric, n: u64) {
        self.metrics[m as usize].fetch_add(n, Ordering::Relaxed);
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

thread_local! {
    /// This thread's shard of the *global* registry (private registries in
    /// tests use their fallback shard instead).
    static GLOBAL_SHARD: std::cell::OnceCell<Arc<Shard>> = const { std::cell::OnceCell::new() };
}

/// The process-wide metric registry: statement counters, latency
/// histograms, per-site lock-wait attribution, and the slow-query log.
///
/// Counter reads go through [`Registry::snapshot`] — the hot-path cells are
/// per-thread shards, so there is no single counter object to read.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    /// Every thread shard ever registered. A plain mutex, NOT a
    /// [`crate::latch`] wrapper: the latch layer reports into this module,
    /// and self-accounting would recurse. Taken once per recording thread
    /// (registration) plus once per snapshot — never on the record path.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Shard used when this registry is not the global one (private
    /// registries in tests), or if thread-local storage is unavailable.
    fallback: Arc<Shard>,
    slow_threshold_ns: AtomicU64,
    slow_log: Mutex<VecDeque<SlowQuery>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(true),
            shards: Mutex::new(Vec::new()),
            fallback: Arc::new(Shard::new()),
            slow_threshold_ns: AtomicU64::new(0),
            slow_log: Mutex::new(VecDeque::new()),
        }
    }

    /// Runs `f` against the calling thread's shard. For the global registry
    /// this is the thread-local cell (registered on first use); private
    /// registries share their fallback shard, which is still thread-safe,
    /// just not contention-free.
    fn with_shard<R>(&self, f: impl FnOnce(&Shard) -> R) -> R {
        if let Some(global) = REGISTRY.get() {
            if std::ptr::eq(self, global) {
                let done = GLOBAL_SHARD.try_with(|cell| {
                    let shard = cell.get_or_init(|| {
                        let shard = Arc::new(Shard::new());
                        global
                            .shards
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(Arc::clone(&shard));
                        shard
                    });
                    Arc::clone(shard)
                });
                // TLS is gone during thread teardown; fall back rather
                // than lose the record or panic in a destructor.
                if let Ok(shard) = done {
                    return f(&shard);
                }
            }
        }
        f(&self.fallback)
    }

    /// Records WAL frame appends (no-op while disabled).
    pub fn record_wal_frames(&self, n: u64) {
        if self.enabled() && n > 0 {
            self.with_shard(|s| s.bump(Metric::WalFrames, n));
        }
    }

    /// Records a transaction outcome (no-op while disabled).
    pub fn record_txn(&self, committed: bool) {
        if !self.enabled() {
            return;
        }
        let m = if committed {
            Metric::TxnCommits
        } else {
            Metric::TxnRollbacks
        };
        self.with_shard(|s| s.bump(m, 1));
    }

    /// Records one recovery pass that found WAL frames to deal with
    /// (no-op while disabled).
    pub fn record_recovery(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::Recoveries, 1));
        }
    }

    /// Records one statement that failed with an error (no-op while
    /// disabled).
    pub fn record_statement_error(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::StatementErrors, 1));
        }
    }

    /// Records one statement stopped by its deadline (no-op while disabled).
    pub fn record_query_timeout(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::QueriesTimedOut, 1));
        }
    }

    /// Records one statement stopped by its cancel flag (no-op while
    /// disabled).
    pub fn record_query_cancel(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::QueriesCanceled, 1));
        }
    }

    /// Records retried page reads — transient read faults that a retry
    /// absorbed (no-op while disabled).
    pub fn record_read_retries(&self, n: u64) {
        if self.enabled() && n > 0 {
            self.with_shard(|s| s.bump(Metric::ReadRetries, n));
        }
    }

    /// Records one transition into degraded read-only mode (no-op while
    /// disabled).
    pub fn record_degraded_entry(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::DegradedEntries, 1));
        }
    }

    /// Records one write refused because the store was degraded (no-op
    /// while disabled).
    pub fn record_degraded_reject(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::DegradedRejects, 1));
        }
    }

    /// Records one serving-layer session opened (a wire connection or a
    /// piped shell session; no-op while disabled).
    pub fn record_serve_session(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::ServeSessions, 1));
        }
    }

    /// Records serving-layer requests handled (protocol lines, meta-commands
    /// included; no-op while disabled).
    pub fn record_serve_requests(&self, n: u64) {
        if self.enabled() && n > 0 {
            self.with_shard(|s| s.bump(Metric::ServeRequests, n));
        }
    }

    /// Records one read-shaped store `sql()` call that fell back to the
    /// exclusive write path because the read dispatcher refused it (no-op
    /// while disabled). A rising value means reads are serializing behind
    /// writers due to statement misclassification.
    pub fn record_sql_read_fallback(&self) {
        if self.enabled() {
            self.with_shard(|s| s.bump(Metric::SqlReadFallbacks, 1));
        }
    }

    /// Records one contended lock acquisition at `site` — the caller found
    /// the latch held, blocked for `waited`, and now owns it (no-op while
    /// disabled).
    pub fn record_lock_wait(&self, site: WaitSite, waited: Duration) {
        if !self.enabled() {
            return;
        }
        self.with_shard(|s| {
            s.wait_counts[site.index()].fetch_add(1, Ordering::Relaxed);
            s.wait_latency[site.index()].record(waited);
        });
    }

    /// Records a plan-cache lookup outcome (no-op while disabled).
    pub fn record_plan_cache(&self, hit: bool) {
        if !self.enabled() {
            return;
        }
        let m = if hit {
            Metric::PlanCacheHits
        } else {
            Metric::PlanCacheMisses
        };
        self.with_shard(|s| s.bump(m, 1));
    }

    /// Whether statement instrumentation is collected. The check is a single
    /// relaxed load, so callers may consult it on every statement.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns statement instrumentation on or off (on by default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Sets the slow-query threshold; `None` disables the log (the default).
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(0);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow-query threshold, if the log is enabled.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        match self.slow_threshold_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Records one executed statement. `is_read` selects the latency
    /// histogram; statements beyond the threshold land in the slow log
    /// (a fixed-capacity ring of the most recent [`SLOW_LOG_CAP`],
    /// evicting oldest).
    pub fn record_statement(&self, sql: &str, is_read: bool, entry: &SlowQuery) {
        if !self.enabled() {
            return;
        }
        self.with_shard(|s| {
            s.bump(Metric::Statements, 1);
            s.bump(Metric::BtreeDescents, entry.stats.btree_descents);
            s.bump(Metric::BtreeDescentReuses, entry.stats.btree_descent_reuses);
            if is_read {
                s.read_latency.record(entry.elapsed);
            } else {
                s.write_latency.record(entry.elapsed);
            }
        });
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        if threshold > 0 && entry.elapsed.as_nanos() >= threshold as u128 {
            self.with_shard(|s| s.bump(Metric::SlowStatements, 1));
            // A panic while the log was held must not take observability
            // down with it: the ring holds plain values, so a poisoned
            // lock's contents are still coherent.
            let mut log = crate::latch::lock(&self.slow_log, WaitSite::Obs);
            if log.len() == SLOW_LOG_CAP {
                log.pop_front();
            }
            log.push_back(SlowQuery {
                sql: sql.to_string(),
                ..entry.clone()
            });
        }
    }

    /// The captured slow queries, oldest first (bounded ring of
    /// the most recent 64).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        crate::latch::lock(&self.slow_log, WaitSite::Obs)
            .iter()
            .cloned()
            .collect()
    }

    /// Empties the slow-query log. Safe against concurrent recorders: the
    /// ring is mutated only under its latch, so a racing
    /// [`Registry::record_statement`] either lands before the clear (and is
    /// dropped) or after (and is retained); either way the ring stays
    /// coherent and bounded.
    pub fn clear_slow_queries(&self) {
        crate::latch::lock(&self.slow_log, WaitSite::Obs).clear();
    }

    /// A plain-value snapshot of every registry metric, aggregated across
    /// all thread shards.
    pub fn snapshot(&self) -> ObsSnapshot {
        let shards: Vec<Arc<Shard>> = self
            .shards
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut metrics = [0u64; NMETRICS];
        let mut read = HistAccum::default();
        let mut write = HistAccum::default();
        let mut wait_counts = [0u64; WaitSite::COUNT];
        let mut wait_accums: [HistAccum; WaitSite::COUNT] = Default::default();
        for shard in shards
            .iter()
            .map(Arc::as_ref)
            .chain(std::iter::once(self.fallback.as_ref()))
        {
            for (total, cell) in metrics.iter_mut().zip(shard.metrics.iter()) {
                *total += cell.load(Ordering::Relaxed);
            }
            shard.read_latency.accumulate(&mut read);
            shard.write_latency.accumulate(&mut write);
            for (total, cell) in wait_counts.iter_mut().zip(shard.wait_counts.iter()) {
                *total += cell.load(Ordering::Relaxed);
            }
            for (acc, hist) in wait_accums.iter_mut().zip(shard.wait_latency.iter()) {
                hist.accumulate(acc);
            }
        }
        let mut wait_latency_by_site = [HistogramSnapshot::default(); WaitSite::COUNT];
        for (out, acc) in wait_latency_by_site.iter_mut().zip(wait_accums.iter()) {
            *out = acc.snapshot();
        }
        ObsSnapshot {
            statements: metrics[Metric::Statements as usize],
            statement_errors: metrics[Metric::StatementErrors as usize],
            slow_statements: metrics[Metric::SlowStatements as usize],
            read_latency: read.snapshot(),
            write_latency: write.snapshot(),
            plan_cache_hits: metrics[Metric::PlanCacheHits as usize],
            plan_cache_misses: metrics[Metric::PlanCacheMisses as usize],
            btree_descents: metrics[Metric::BtreeDescents as usize],
            btree_descent_reuses: metrics[Metric::BtreeDescentReuses as usize],
            wal_frames_written: metrics[Metric::WalFrames as usize],
            txn_commits: metrics[Metric::TxnCommits as usize],
            txn_rollbacks: metrics[Metric::TxnRollbacks as usize],
            recoveries_run: metrics[Metric::Recoveries as usize],
            queries_timed_out: metrics[Metric::QueriesTimedOut as usize],
            queries_canceled: metrics[Metric::QueriesCanceled as usize],
            read_retries: metrics[Metric::ReadRetries as usize],
            degraded_entries: metrics[Metric::DegradedEntries as usize],
            degraded_rejects: metrics[Metric::DegradedRejects as usize],
            serve_sessions: metrics[Metric::ServeSessions as usize],
            serve_requests: metrics[Metric::ServeRequests as usize],
            sql_read_fallbacks: metrics[Metric::SqlReadFallbacks as usize],
            lock_waits: wait_counts.iter().sum(),
            lock_waits_by_site: wait_counts,
            wait_latency_by_site,
        }
    }
}

/// Point-in-time copy of the registry counters (see [`snapshot`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Statements executed.
    pub statements: u64,
    /// Statements that failed.
    pub statement_errors: u64,
    /// Statements beyond the slow-query threshold.
    pub slow_statements: u64,
    /// Read-statement latency summary.
    pub read_latency: HistogramSnapshot,
    /// Write-statement latency summary.
    pub write_latency: HistogramSnapshot,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (parse + plan work done).
    pub plan_cache_misses: u64,
    /// B+tree root-to-leaf descents.
    pub btree_descents: u64,
    /// B+tree range positionings that reused a descent finger (leaf-link
    /// walk) instead of descending from the root.
    pub btree_descent_reuses: u64,
    /// Page-image frames appended to any write-ahead log.
    pub wal_frames_written: u64,
    /// Transactions committed.
    pub txn_commits: u64,
    /// Transactions rolled back.
    pub txn_rollbacks: u64,
    /// Opens that ran WAL recovery.
    pub recoveries_run: u64,
    /// Statements stopped by their deadline ([`crate::DbError::Timeout`]).
    pub queries_timed_out: u64,
    /// Statements stopped by a cancel flag ([`crate::DbError::Canceled`]).
    pub queries_canceled: u64,
    /// Page-read retries that absorbed a transient read fault.
    pub read_retries: u64,
    /// Transitions into degraded read-only mode.
    pub degraded_entries: u64,
    /// Writes refused while degraded ([`crate::DbError::Degraded`]).
    pub degraded_rejects: u64,
    /// Serving-layer sessions opened (wire connections, piped shells).
    pub serve_sessions: u64,
    /// Serving-layer requests handled (protocol lines).
    pub serve_requests: u64,
    /// Read-shaped store `sql()` calls that fell back to the exclusive
    /// write path (misclassified reads serializing behind writers).
    pub sql_read_fallbacks: u64,
    /// Contended lock acquisitions (blocked at least once), all sites.
    pub lock_waits: u64,
    /// Contended acquisitions per wait site, indexed as [`WaitSite::ALL`].
    pub lock_waits_by_site: [u64; WaitSite::COUNT],
    /// Wait-duration summary per site, indexed as [`WaitSite::ALL`].
    pub wait_latency_by_site: [HistogramSnapshot; WaitSite::COUNT],
}

impl ObsSnapshot {
    /// Contended acquisitions recorded for `site`.
    pub fn lock_waits_at(&self, site: WaitSite) -> u64 {
        self.lock_waits_by_site[site.index()]
    }

    /// Wait-duration summary for `site`.
    pub fn wait_latency_at(&self, site: WaitSite) -> HistogramSnapshot {
        self.wait_latency_by_site[site.index()]
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Snapshot of the global registry — convenience for `registry().snapshot()`.
pub fn snapshot() -> ObsSnapshot {
    registry().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_histogram_basics() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);

        let h = DurationHistogram::new();
        for ms in [1u64, 2, 4, 100] {
            h.record(Duration::from_millis(ms));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.total, Duration::from_millis(107));
        assert_eq!(s.max, Duration::from_millis(100));
        assert!(s.p50 >= Duration::from_millis(2));
        assert!(s.p95 >= Duration::from_millis(100));
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn quantiles_clamp_to_max_and_stay_ordered() {
        // Empty histogram: everything zero.
        let h = DurationHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.p95, Duration::ZERO);
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);

        // Single sample: every quantile IS that sample (clamped to max).
        let h = DurationHistogram::new();
        h.record(Duration::from_micros(300));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, Duration::from_micros(300));
        assert_eq!(s.p95, Duration::from_micros(300));
        assert_eq!(s.p99, Duration::from_micros(300));
        assert_eq!(s.max, Duration::from_micros(300));

        // All-equal samples: same property.
        let h = DurationHistogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_nanos(12_345));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, Duration::from_nanos(12_345));
        assert_eq!(s.p95, Duration::from_nanos(12_345));
        assert_eq!(s.max, Duration::from_nanos(12_345));
    }

    #[test]
    fn span_records_on_drop() {
        let h = DurationHistogram::new();
        {
            let span = Span::enter_if(true, &h);
            assert!(span.elapsed() < Duration::from_secs(1));
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        // `enter_if(false, ..)` models `Span::enter` under a disabled
        // registry without racing other tests on the global flag: the
        // histogram must not mutate at all.
        let h = DurationHistogram::new();
        {
            let span = Span::enter_if(false, &h);
            assert_eq!(span.elapsed(), Duration::ZERO);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.total, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
    }

    #[test]
    fn slow_log_threshold_and_ring() {
        // A private registry so parallel tests don't interfere.
        let reg = Registry::new();
        reg.set_slow_query_threshold(Some(Duration::from_millis(5)));
        assert_eq!(reg.slow_query_threshold(), Some(Duration::from_millis(5)));
        let fast = SlowQuery {
            sql: String::new(),
            elapsed: Duration::from_millis(1),
            rows: 0,
            stats: ExecStats::default(),
        };
        reg.record_statement("SELECT 1", true, &fast);
        assert!(reg.slow_queries().is_empty());
        for i in 0..(SLOW_LOG_CAP + 10) {
            let slow = SlowQuery {
                sql: String::new(),
                elapsed: Duration::from_millis(50),
                rows: i as u64,
                stats: ExecStats::default(),
            };
            reg.record_statement(&format!("SELECT {i}"), true, &slow);
        }
        let log = reg.slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAP);
        assert_eq!(log[0].sql, "SELECT 10", "oldest entries evicted");
        assert_eq!(reg.snapshot().slow_statements, SLOW_LOG_CAP as u64 + 10);
        reg.clear_slow_queries();
        assert!(reg.slow_queries().is_empty());
    }

    #[test]
    fn clear_slow_queries_is_race_safe() {
        use std::sync::atomic::AtomicBool;

        let reg = Arc::new(Registry::new());
        reg.set_slow_query_threshold(Some(Duration::from_nanos(1)));
        let stop = Arc::new(AtomicBool::new(false));
        let recorders: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let q = SlowQuery {
                            sql: format!("SELECT {t}/{n}"),
                            elapsed: Duration::from_millis(9),
                            rows: n,
                            stats: ExecStats::default(),
                        };
                        reg.record_statement(&q.sql.clone(), true, &q);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..200 {
            reg.clear_slow_queries();
            assert!(reg.slow_queries().len() <= SLOW_LOG_CAP);
        }
        stop.store(true, Ordering::Relaxed);
        let recorded: u64 = recorders.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(recorded > 0);
        assert!(reg.slow_queries().len() <= SLOW_LOG_CAP);
        assert_eq!(reg.snapshot().slow_statements, recorded);
    }

    #[test]
    fn plan_cache_and_descent_counters() {
        let reg = Registry::new();
        reg.record_plan_cache(false);
        reg.record_plan_cache(true);
        reg.record_plan_cache(true);
        let stats = ExecStats {
            btree_descents: 5,
            btree_descent_reuses: 2,
            ..ExecStats::default()
        };
        reg.record_statement(
            "SELECT 1",
            true,
            &SlowQuery {
                sql: String::new(),
                elapsed: Duration::from_millis(1),
                rows: 0,
                stats,
            },
        );
        let s = reg.snapshot();
        assert_eq!(s.plan_cache_hits, 2);
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.btree_descents, 5);
        assert_eq!(s.btree_descent_reuses, 2);
        // While disabled, none of the new counters move either.
        reg.set_enabled(false);
        reg.record_plan_cache(true);
        reg.record_plan_cache(false);
        assert_eq!(reg.snapshot().plan_cache_hits, 2);
        assert_eq!(reg.snapshot().plan_cache_misses, 1);
    }

    #[test]
    fn governance_counters_record_and_respect_disable() {
        let reg = Registry::new();
        reg.record_query_timeout();
        reg.record_query_cancel();
        reg.record_query_cancel();
        reg.record_read_retries(3);
        reg.record_degraded_entry();
        reg.record_degraded_reject();
        reg.record_degraded_reject();
        let s = reg.snapshot();
        assert_eq!(s.queries_timed_out, 1);
        assert_eq!(s.queries_canceled, 2);
        assert_eq!(s.read_retries, 3);
        assert_eq!(s.degraded_entries, 1);
        assert_eq!(s.degraded_rejects, 2);
        reg.set_enabled(false);
        reg.record_query_timeout();
        reg.record_read_retries(5);
        reg.record_degraded_reject();
        assert_eq!(reg.snapshot().queries_timed_out, 1);
        assert_eq!(reg.snapshot().read_retries, 3);
        assert_eq!(reg.snapshot().degraded_rejects, 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        assert!(!reg.enabled());
        let q = SlowQuery {
            sql: String::new(),
            elapsed: Duration::from_secs(1),
            rows: 0,
            stats: ExecStats::default(),
        };
        reg.record_statement("SELECT 1", true, &q);
        reg.record_lock_wait(WaitSite::Backend, Duration::from_millis(1));
        let s = reg.snapshot();
        assert_eq!(s.statements, 0);
        assert_eq!(s.lock_waits, 0);
        reg.set_enabled(true);
    }

    #[test]
    fn wait_sites_attribute_independently() {
        let reg = Registry::new();
        reg.record_lock_wait(WaitSite::Backend, Duration::from_micros(10));
        reg.record_lock_wait(WaitSite::Backend, Duration::from_micros(20));
        reg.record_lock_wait(WaitSite::PlanCache, Duration::from_micros(5));
        let s = reg.snapshot();
        assert_eq!(s.lock_waits, 3);
        assert_eq!(s.lock_waits_at(WaitSite::Backend), 2);
        assert_eq!(s.lock_waits_at(WaitSite::PlanCache), 1);
        assert_eq!(s.lock_waits_at(WaitSite::Wal), 0);
        let backend = s.wait_latency_at(WaitSite::Backend);
        assert_eq!(backend.count, 2);
        assert_eq!(backend.total, Duration::from_micros(30));
        assert_eq!(s.wait_latency_at(WaitSite::Store).count, 0);
    }

    #[test]
    fn sharded_counters_sum_across_threads() {
        // The global registry aggregates every thread's shard. Other tests
        // run concurrently, so assert growth, not exact totals.
        let before = snapshot().txn_commits;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        registry().record_txn(true);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(snapshot().txn_commits >= before + 400);
    }

    mod percentile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantiles_monotonic_and_bounded(samples in proptest::collection::vec(1u64..=10_000_000_000, 1..200)) {
                let h = DurationHistogram::new();
                for &ns in &samples {
                    h.record(Duration::from_nanos(ns));
                }
                let s = h.snapshot();
                let true_max = *samples.iter().max().unwrap();
                prop_assert_eq!(s.count, samples.len() as u64);
                prop_assert_eq!(s.max, Duration::from_nanos(true_max));
                prop_assert!(s.p50 <= s.p95, "p50 {:?} > p95 {:?}", s.p50, s.p95);
                prop_assert!(s.p95 <= s.p99, "p95 {:?} > p99 {:?}", s.p95, s.p99);
                prop_assert!(s.p99 <= s.max, "p99 {:?} > max {:?}", s.p99, s.max);
                prop_assert!(s.p50 > Duration::ZERO);
            }
        }
    }
}
