//! Engine observability: counters, duration histograms, timing spans, a
//! global snapshot API, and a configurable slow-query log.
//!
//! Everything here is built on `std` only (the crate keeps an empty
//! `[dependencies]` section). The whole layer sits behind a single
//! process-wide enable flag — when disabled (the default is *enabled*), the
//! per-statement overhead in [`crate::Database::run`] is one relaxed atomic
//! load, so hot paths pay essentially nothing for the instrumentation.
//!
//! The registry is process-global on purpose: it aggregates across every
//! [`crate::Database`] in the process (per-database numbers live in
//! [`crate::ExecStats`] / [`crate::Database::total_stats`] instead). Tests
//! that read it must therefore assert monotonic inequalities, not exact
//! values.

use crate::exec::ExecStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A monotonically increasing event counter (relaxed atomics; cheap enough
/// to bump from any path).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets in a [`DurationHistogram`] (covers 1 ns to ~18 min).
const HIST_BUCKETS: usize = 40;

/// A lock-free histogram of durations with power-of-two nanosecond buckets
/// (bucket `i` holds durations in `[2^i, 2^(i+1))` ns), plus running count,
/// sum, and max for exact averages.
#[derive(Debug)]
pub struct DurationHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub const fn new() -> DurationHistogram {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed only
        const ZERO: AtomicU64 = AtomicU64::new(0);
        DurationHistogram {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A plain-value snapshot with approximate quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let quantile = |q: f64| -> Duration {
            if count == 0 {
                return Duration::ZERO;
            }
            let target = ((count as f64) * q).ceil() as u64;
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Upper edge of the bucket: a conservative estimate.
                    return Duration::from_nanos(1u64 << (i + 1).min(63));
                }
            }
            Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
        };
        HistogramSnapshot {
            count,
            total: Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed)),
            max: Duration::from_nanos(self.max_ns.load(Ordering::Relaxed)),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`DurationHistogram`]. Quantiles are
/// bucket-resolution estimates (upper bucket edge), not exact.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded durations.
    pub count: u64,
    /// Sum of all recorded durations.
    pub total: Duration,
    /// Largest recorded duration.
    pub max: Duration,
    /// Approximate median.
    pub p50: Duration,
    /// Approximate 95th percentile.
    pub p95: Duration,
    /// Approximate 99th percentile.
    pub p99: Duration,
}

/// A timing span: starts on construction, records its elapsed time into a
/// histogram when dropped.
///
/// ```
/// use ordxml_rdbms::obs;
/// let hist = obs::DurationHistogram::new();
/// {
///     let _span = obs::Span::enter(&hist);
///     // ... timed work ...
/// }
/// assert_eq!(hist.snapshot().count, 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a DurationHistogram,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts a span that reports into `hist`.
    pub fn enter(hist: &'a DurationHistogram) -> Span<'a> {
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed());
    }
}

/// One statement captured by the slow-query log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The SQL text as submitted.
    pub sql: String,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Rows returned (SELECT) or affected (writes).
    pub rows: u64,
    /// The statement's merged execution counters.
    pub stats: ExecStats,
}

/// Capacity of the slow-query ring buffer.
const SLOW_LOG_CAP: usize = 64;

/// The process-wide metric registry: statement counters, latency
/// histograms, and the slow-query log.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    /// Statements executed (all kinds).
    pub statements: Counter,
    /// Statements that failed with an error.
    pub statement_errors: Counter,
    /// Statements that exceeded the slow-query threshold.
    pub slow_statements: Counter,
    /// Latency of read statements (`SELECT`, `EXPLAIN`).
    pub read_latency: DurationHistogram,
    /// Latency of write statements (`INSERT`/`UPDATE`/`DELETE`/DDL).
    pub write_latency: DurationHistogram,
    /// Statements whose plan was served from the per-database plan cache.
    pub plan_cache_hits: Counter,
    /// Statements that had to be parsed and planned (cold or evicted).
    pub plan_cache_misses: Counter,
    /// B+tree root-to-leaf descents across all statements (each disjoint
    /// range of a multi-range scan costs one descent).
    pub btree_descents: Counter,
    /// Page-image frames appended to any write-ahead log.
    pub wal_frames_written: Counter,
    /// Transactions committed (explicit and auto-commit).
    pub txn_commits: Counter,
    /// Transactions rolled back (explicit, or automatic on statement error).
    pub txn_rollbacks: Counter,
    /// Database opens that found a non-empty WAL and ran recovery.
    pub recoveries_run: Counter,
    /// Lock acquisitions that found the lock held and had to block
    /// (pager backend / WAL / transaction-state latches). Uncontended
    /// acquisitions are not counted.
    pub lock_waits: Counter,
    slow_threshold_ns: AtomicU64,
    slow_log: Mutex<VecDeque<SlowQuery>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(true),
            statements: Counter::new(),
            statement_errors: Counter::new(),
            slow_statements: Counter::new(),
            read_latency: DurationHistogram::new(),
            write_latency: DurationHistogram::new(),
            plan_cache_hits: Counter::new(),
            plan_cache_misses: Counter::new(),
            btree_descents: Counter::new(),
            wal_frames_written: Counter::new(),
            txn_commits: Counter::new(),
            txn_rollbacks: Counter::new(),
            recoveries_run: Counter::new(),
            lock_waits: Counter::new(),
            slow_threshold_ns: AtomicU64::new(0),
            slow_log: Mutex::new(VecDeque::new()),
        }
    }

    /// Records WAL frame appends (no-op while disabled).
    pub fn record_wal_frames(&self, n: u64) {
        if self.enabled() && n > 0 {
            self.wal_frames_written.add(n);
        }
    }

    /// Records a transaction outcome (no-op while disabled).
    pub fn record_txn(&self, committed: bool) {
        if !self.enabled() {
            return;
        }
        if committed {
            self.txn_commits.add(1);
        } else {
            self.txn_rollbacks.add(1);
        }
    }

    /// Records one recovery pass that found WAL frames to deal with
    /// (no-op while disabled).
    pub fn record_recovery(&self) {
        if self.enabled() {
            self.recoveries_run.add(1);
        }
    }

    /// Records one contended lock acquisition — the caller found the latch
    /// held and had to block (no-op while disabled).
    pub fn record_lock_wait(&self) {
        if self.enabled() {
            self.lock_waits.add(1);
        }
    }

    /// Records a plan-cache lookup outcome (no-op while disabled).
    pub fn record_plan_cache(&self, hit: bool) {
        if !self.enabled() {
            return;
        }
        if hit {
            self.plan_cache_hits.add(1);
        } else {
            self.plan_cache_misses.add(1);
        }
    }

    /// Whether statement instrumentation is collected. The check is a single
    /// relaxed load, so callers may consult it on every statement.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns statement instrumentation on or off (on by default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Sets the slow-query threshold; `None` disables the log (the default).
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(0);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow-query threshold, if the log is enabled.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        match self.slow_threshold_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Records one executed statement. `is_read` selects the latency
    /// histogram; statements beyond the threshold land in the slow log.
    pub fn record_statement(&self, sql: &str, is_read: bool, entry: &SlowQuery) {
        if !self.enabled() {
            return;
        }
        self.statements.add(1);
        self.btree_descents.add(entry.stats.btree_descents);
        if is_read {
            self.read_latency.record(entry.elapsed);
        } else {
            self.write_latency.record(entry.elapsed);
        }
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        if threshold > 0 && entry.elapsed.as_nanos() >= threshold as u128 {
            self.slow_statements.add(1);
            // A panic while the log was held must not take observability
            // down with it: the ring holds plain values, so a poisoned
            // lock's contents are still coherent.
            let mut log = self
                .slow_log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if log.len() == SLOW_LOG_CAP {
                log.pop_front();
            }
            log.push_back(SlowQuery {
                sql: sql.to_string(),
                ..entry.clone()
            });
        }
    }

    /// The captured slow queries, oldest first (bounded ring of
    /// the most recent 64).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Empties the slow-query log.
    pub fn clear_slow_queries(&self) {
        self.slow_log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// A plain-value snapshot of every registry metric.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            statements: self.statements.get(),
            statement_errors: self.statement_errors.get(),
            slow_statements: self.slow_statements.get(),
            read_latency: self.read_latency.snapshot(),
            write_latency: self.write_latency.snapshot(),
            plan_cache_hits: self.plan_cache_hits.get(),
            plan_cache_misses: self.plan_cache_misses.get(),
            btree_descents: self.btree_descents.get(),
            wal_frames_written: self.wal_frames_written.get(),
            txn_commits: self.txn_commits.get(),
            txn_rollbacks: self.txn_rollbacks.get(),
            recoveries_run: self.recoveries_run.get(),
            lock_waits: self.lock_waits.get(),
        }
    }
}

/// Point-in-time copy of the registry counters (see [`snapshot`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Statements executed.
    pub statements: u64,
    /// Statements that failed.
    pub statement_errors: u64,
    /// Statements beyond the slow-query threshold.
    pub slow_statements: u64,
    /// Read-statement latency summary.
    pub read_latency: HistogramSnapshot,
    /// Write-statement latency summary.
    pub write_latency: HistogramSnapshot,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (parse + plan work done).
    pub plan_cache_misses: u64,
    /// B+tree root-to-leaf descents.
    pub btree_descents: u64,
    /// Page-image frames appended to any write-ahead log.
    pub wal_frames_written: u64,
    /// Transactions committed.
    pub txn_commits: u64,
    /// Transactions rolled back.
    pub txn_rollbacks: u64,
    /// Opens that ran WAL recovery.
    pub recoveries_run: u64,
    /// Contended lock acquisitions (blocked at least once).
    pub lock_waits: u64,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Snapshot of the global registry — convenience for `registry().snapshot()`.
pub fn snapshot() -> ObsSnapshot {
    registry().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_histogram_basics() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);

        let h = DurationHistogram::new();
        for ms in [1u64, 2, 4, 100] {
            h.record(Duration::from_millis(ms));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.total, Duration::from_millis(107));
        assert_eq!(s.max, Duration::from_millis(100));
        assert!(s.p50 >= Duration::from_millis(2));
        assert!(s.p95 >= Duration::from_millis(100));
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn span_records_on_drop() {
        let h = DurationHistogram::new();
        {
            let span = Span::enter(&h);
            assert!(span.elapsed() < Duration::from_secs(1));
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn slow_log_threshold_and_ring() {
        // A private registry so parallel tests don't interfere.
        let reg = Registry::new();
        reg.set_slow_query_threshold(Some(Duration::from_millis(5)));
        assert_eq!(reg.slow_query_threshold(), Some(Duration::from_millis(5)));
        let fast = SlowQuery {
            sql: String::new(),
            elapsed: Duration::from_millis(1),
            rows: 0,
            stats: ExecStats::default(),
        };
        reg.record_statement("SELECT 1", true, &fast);
        assert!(reg.slow_queries().is_empty());
        for i in 0..(SLOW_LOG_CAP + 10) {
            let slow = SlowQuery {
                sql: String::new(),
                elapsed: Duration::from_millis(50),
                rows: i as u64,
                stats: ExecStats::default(),
            };
            reg.record_statement(&format!("SELECT {i}"), true, &slow);
        }
        let log = reg.slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAP);
        assert_eq!(log[0].sql, "SELECT 10", "oldest entries evicted");
        assert_eq!(reg.slow_statements.get(), SLOW_LOG_CAP as u64 + 10);
        reg.clear_slow_queries();
        assert!(reg.slow_queries().is_empty());
    }

    #[test]
    fn plan_cache_and_descent_counters() {
        let reg = Registry::new();
        reg.record_plan_cache(false);
        reg.record_plan_cache(true);
        reg.record_plan_cache(true);
        let stats = ExecStats {
            btree_descents: 5,
            ..ExecStats::default()
        };
        reg.record_statement(
            "SELECT 1",
            true,
            &SlowQuery {
                sql: String::new(),
                elapsed: Duration::from_millis(1),
                rows: 0,
                stats,
            },
        );
        let s = reg.snapshot();
        assert_eq!(s.plan_cache_hits, 2);
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.btree_descents, 5);
        // While disabled, none of the new counters move either.
        reg.set_enabled(false);
        reg.record_plan_cache(true);
        reg.record_plan_cache(false);
        assert_eq!(reg.snapshot().plan_cache_hits, 2);
        assert_eq!(reg.snapshot().plan_cache_misses, 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        assert!(!reg.enabled());
        let q = SlowQuery {
            sql: String::new(),
            elapsed: Duration::from_secs(1),
            rows: 0,
            stats: ExecStats::default(),
        };
        reg.record_statement("SELECT 1", true, &q);
        assert_eq!(reg.snapshot().statements, 0);
        reg.set_enabled(true);
    }
}
