//! The catalog: tables, their storage, and their indexes.
//!
//! A [`Table`] ties a [`TableSchema`] to a [`HeapFile`] plus B+tree indexes
//! (the primary-key index and any secondary indexes). All row mutations go
//! through `Table` methods so that every index stays consistent with the
//! heap. Secondary non-unique indexes append the packed row id to the
//! encoded key, the standard way to make duplicate keys unique in a B+tree.
//!
//! The catalog can serialize itself to a byte blob (schemas + heap page
//! lists) for file-backed databases; indexes are rebuilt by scanning heaps
//! on reopen.

use crate::btree::{BTree, BTreeCounters};
use crate::error::{DbError, DbResult};
use crate::schema::{ColumnDef, IndexDef, TableSchema};
use crate::storage::{HeapFile, PageId, Pager, RowId};
use crate::value::{decode_row, encode_key, encode_row, DataType, Row, Value};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// One `[lower, upper)`-style encoded-key range, as produced by the
/// executor's multi-range batching (see [`Table::index_range_multi`]).
pub type KeyRange = (Bound<Vec<u8>>, Bound<Vec<u8>>);

/// A table: schema + heap + indexes.
///
/// `Clone` is a deep copy (heap page list + full index trees); the catalog
/// shares tables behind `Arc` so cloning only happens copy-on-write, when a
/// writer first touches a table that a published snapshot still references.
#[derive(Debug, Clone)]
pub struct Table {
    /// The logical schema.
    pub schema: TableSchema,
    /// Row storage.
    pub heap: HeapFile,
    /// Primary-key index (`encode_key(pk columns) -> RowId`); `None` when the
    /// table has no primary key.
    pub pk_index: Option<BTree>,
    /// Secondary indexes.
    pub indexes: Vec<(IndexDef, BTree)>,
}

impl Table {
    fn new(schema: TableSchema) -> Self {
        let pk_index = if schema.primary_key.is_empty() {
            None
        } else {
            Some(BTree::new())
        };
        Table {
            schema,
            heap: HeapFile::new(),
            pk_index,
            indexes: Vec::new(),
        }
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.heap.len()
    }

    fn pk_key(&self, row: &[Value]) -> Vec<u8> {
        let cols: Vec<Value> = self
            .schema
            .primary_key
            .iter()
            .map(|&i| row[i].clone())
            .collect();
        encode_key(&cols)
    }

    fn index_key(def: &IndexDef, row: &[Value], rowid: RowId) -> Vec<u8> {
        let cols: Vec<Value> = def.columns.iter().map(|&i| row[i].clone()).collect();
        let mut key = encode_key(&cols);
        if !def.unique {
            key.extend_from_slice(&rowid.pack().to_be_bytes());
        }
        key
    }

    /// Inserts a validated row, maintaining every index. Returns the row id.
    pub fn insert_row(&mut self, pager: &Pager, row: Row) -> DbResult<RowId> {
        let row = self.schema.check_row(row)?;
        if let Some(pk) = &self.pk_index {
            let key = self.pk_key(&row);
            if pk.contains(&key) {
                return Err(DbError::Constraint(format!(
                    "duplicate primary key in table `{}`",
                    self.schema.name
                )));
            }
        }
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let rowid = self.heap.insert(pager, &buf)?;
        let pk_key = self.pk_index.is_some().then(|| self.pk_key(&row));
        if let (Some(pk), Some(key)) = (&mut self.pk_index, pk_key) {
            pk.insert(&key, rowid.pack());
        }
        for (def, tree) in &mut self.indexes {
            let key = Table::index_key(def, &row, rowid);
            if def.unique && tree.insert(&key, rowid.pack()).is_some() {
                return Err(DbError::Constraint(format!(
                    "duplicate key in unique index `{}`",
                    def.name
                )));
            }
            if !def.unique {
                tree.insert(&key, rowid.pack());
            }
        }
        Ok(rowid)
    }

    /// Reads and decodes the row at `rowid`.
    pub fn get_row(&self, pager: &Pager, rowid: RowId) -> DbResult<Row> {
        decode_row(&self.heap.get(pager, rowid)?)
    }

    /// Deletes the row at `rowid`, maintaining every index.
    pub fn delete_row(&mut self, pager: &Pager, rowid: RowId) -> DbResult<()> {
        let row = self.get_row(pager, rowid)?;
        if let Some(pk) = &mut self.pk_index {
            let cols: Vec<Value> = self
                .schema
                .primary_key
                .iter()
                .map(|&i| row[i].clone())
                .collect();
            pk.remove(&encode_key(&cols));
        }
        for (def, tree) in &mut self.indexes {
            tree.remove(&Table::index_key(def, &row, rowid));
        }
        self.heap.delete(pager, rowid)?;
        Ok(())
    }

    /// Replaces the row at `rowid` with `new_row`, maintaining every index.
    /// Returns the (possibly relocated) row id.
    pub fn update_row(&mut self, pager: &Pager, rowid: RowId, new_row: Row) -> DbResult<RowId> {
        let new_row = self.schema.check_row(new_row)?;
        let old_row = self.get_row(pager, rowid)?;
        // Primary-key change: check uniqueness against the *other* rows.
        if let Some(pk) = &self.pk_index {
            let old_key = self.pk_key(&old_row);
            let new_key = self.pk_key(&new_row);
            if old_key != new_key && pk.contains(&new_key) {
                return Err(DbError::Constraint(format!(
                    "duplicate primary key in table `{}`",
                    self.schema.name
                )));
            }
        }
        let mut buf = Vec::new();
        encode_row(&new_row, &mut buf);
        let new_rowid = self.heap.update(pager, rowid, &buf)?;
        let keys = self
            .pk_index
            .is_some()
            .then(|| (self.pk_key(&old_row), self.pk_key(&new_row)));
        if let (Some(pk), Some((old_key, new_key))) = (&mut self.pk_index, keys) {
            pk.remove(&old_key);
            pk.insert(&new_key, new_rowid.pack());
        }
        for (def, tree) in &mut self.indexes {
            let old_key = Table::index_key(def, &old_row, rowid);
            let new_key = Table::index_key(def, &new_row, new_rowid);
            if old_key != new_key {
                tree.remove(&old_key);
                if def.unique && tree.insert(&new_key, new_rowid.pack()).is_some() {
                    return Err(DbError::Constraint(format!(
                        "duplicate key in unique index `{}`",
                        def.name
                    )));
                }
                if !def.unique {
                    tree.insert(&new_key, new_rowid.pack());
                }
            } else if new_rowid != rowid {
                tree.insert(&new_key, new_rowid.pack());
            }
        }
        Ok(new_rowid)
    }

    /// Point lookup by primary key values.
    pub fn pk_lookup(&self, values: &[Value]) -> Option<RowId> {
        let pk = self.pk_index.as_ref()?;
        pk.get(&encode_key(values)).map(RowId::unpack)
    }

    /// Row ids whose index/PK key falls in `[lower, upper)`-style bounds.
    /// `index` is `None` for the PK index or `Some(i)` for `indexes[i]`.
    /// Results arrive in key order (`reverse` flips the direction).
    pub fn index_range(
        &self,
        index: Option<usize>,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        reverse: bool,
    ) -> Vec<RowId> {
        // Invariant, not user-reachable: the planner only emits a PK scan
        // for tables whose schema has a primary key, and index ordinals are
        // positions it read out of this same catalog.
        let tree = match index {
            None => self
                .pk_index
                .as_ref()
                .expect("planner picked PK scan on PK-less table"),
            Some(i) => &self.indexes[i].1,
        };
        if reverse {
            tree.range_rev(lower, upper)
                .map(|(_, v)| RowId::unpack(v))
                .collect()
        } else {
            tree.range(lower, upper)
                .map(|(_, v)| RowId::unpack(v))
                .collect()
        }
    }

    /// Row ids for a *batch* of ranges over one index, scanned in order
    /// with descent-finger reuse: each range after the first resumes from
    /// where the previous scan stopped (a short leaf-link walk) instead of
    /// descending from the root — see [`BTree::range_from`]. The executor's
    /// multi-range scans pass their ascending disjoint range list here,
    /// which is what turns `btree_descents` from "one per range" into "one
    /// per statement" on batched workloads. Ranges that are not ascending
    /// are still answered correctly (the finger fails validation and the
    /// scan descends), just without the saving.
    pub fn index_range_multi(&self, index: Option<usize>, ranges: &[KeyRange]) -> Vec<Vec<RowId>> {
        let tree = match index {
            None => self
                .pk_index
                .as_ref()
                .expect("planner picked PK scan on PK-less table"),
            Some(i) => &self.indexes[i].1,
        };
        fn as_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
            match b {
                Bound::Included(k) => Bound::Included(k.as_slice()),
                Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        let mut finger = None;
        ranges
            .iter()
            .map(|(lower, upper)| {
                let mut scan = tree.range_from(finger.take(), as_ref(lower), as_ref(upper));
                let ids: Vec<RowId> = scan.by_ref().map(|(_, v)| RowId::unpack(v)).collect();
                finger = scan.finger();
                ids
            })
            .collect()
    }

    /// Rebuilds every index from the heap (used on reopen).
    fn rebuild_indexes(&mut self, pager: &Pager) -> DbResult<()> {
        if let Some(pk) = &mut self.pk_index {
            pk.clear();
        }
        for (_, tree) in &mut self.indexes {
            tree.clear();
        }
        for idx in 0..self.heap.page_count() {
            for (rowid, rec) in self.heap.page_rows(pager, idx)? {
                let row = decode_row(&rec)?;
                let pk_key = self.pk_index.is_some().then(|| self.pk_key(&row));
                if let (Some(pk), Some(key)) = (&mut self.pk_index, pk_key) {
                    pk.insert(&key, rowid.pack());
                }
                for (def, tree) in &mut self.indexes {
                    tree.insert(&Table::index_key(def, &row, rowid), rowid.pack());
                }
            }
        }
        Ok(())
    }
}

/// The set of tables in a database.
///
/// Tables live behind `Arc` so that `Catalog::clone` (used to publish MVCC
/// snapshots) is cheap: it copies the name map and bumps refcounts. Writers
/// mutate through [`Catalog::table_mut`], which copy-on-writes a table the
/// first time it is touched while a snapshot still shares it.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: Vec<Arc<Table>>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table. Fails if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> DbResult<()> {
        let name = schema.name.to_ascii_lowercase();
        if self.by_name.contains_key(&name) {
            return Err(DbError::Schema(format!("table `{name}` already exists")));
        }
        // Check column-name uniqueness.
        for (i, c) in schema.columns.iter().enumerate() {
            if schema.columns[..i]
                .iter()
                .any(|o| o.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(DbError::Schema(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
        }
        self.by_name.insert(name, self.tables.len());
        self.tables.push(Arc::new(Table::new(schema)));
        Ok(())
    }

    /// Drops a table (its pages are not reclaimed from the pager; page
    /// recycling is out of scope for this engine).
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        let name = name.to_ascii_lowercase();
        let idx = self
            .by_name
            .remove(&name)
            .ok_or_else(|| DbError::Unknown(format!("table `{name}`")))?;
        self.tables.remove(idx);
        // Reindex the name map.
        for v in self.by_name.values_mut() {
            if *v > idx {
                *v -= 1;
            }
        }
        Ok(())
    }

    /// Adds a secondary index to a table and builds it from existing rows.
    pub fn create_index(&mut self, pager: &Pager, table: &str, def: IndexDef) -> DbResult<()> {
        // Index names are unique across the database.
        let dup = self
            .tables
            .iter()
            .flat_map(|t| &t.indexes)
            .any(|(d, _)| d.name.eq_ignore_ascii_case(&def.name));
        if dup {
            return Err(DbError::Schema(format!(
                "index `{}` already exists",
                def.name
            )));
        }
        let t = self.table_mut(table)?;
        let mut tree = BTree::new();
        for idx in 0..t.heap.page_count() {
            for (rowid, rec) in t.heap.page_rows(pager, idx)? {
                let row = decode_row(&rec)?;
                let key = Table::index_key(&def, &row, rowid);
                if def.unique && tree.insert(&key, rowid.pack()).is_some() {
                    return Err(DbError::Constraint(format!(
                        "existing rows violate unique index `{}`",
                        def.name
                    )));
                }
                if !def.unique {
                    tree.insert(&key, rowid.pack());
                }
            }
        }
        t.indexes.push((def, tree));
        Ok(())
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|&i| &*self.tables[i])
            .ok_or_else(|| DbError::Unknown(format!("table `{name}`")))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        let idx = *self
            .by_name
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::Unknown(format!("table `{name}`")))?;
        Ok(Arc::make_mut(&mut self.tables[idx]))
    }

    /// `true` if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.by_name.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_name.keys().cloned().collect();
        names.sort();
        names
    }

    /// Sums the B+tree operation counters of every index (primary and
    /// secondary) across all tables. [`crate::Database::run`] diffs this
    /// before/after a statement to charge index traffic to its
    /// [`crate::ExecStats`].
    pub fn btree_counters(&self) -> BTreeCounters {
        let mut total = BTreeCounters::default();
        for t in &self.tables {
            if let Some(pk) = &t.pk_index {
                total.merge(&pk.counters());
            }
            for (_, tree) in &t.indexes {
                total.merge(&tree.counters());
            }
        }
        total
    }

    // -----------------------------------------------------------------
    // Persistence
    // -----------------------------------------------------------------

    /// Serializes the catalog (schemas, index definitions, heap page lists)
    /// into a byte blob.
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for t in &self.tables {
            put_str(&mut out, &t.schema.name);
            out.extend_from_slice(&(t.schema.columns.len() as u32).to_le_bytes());
            for c in &t.schema.columns {
                put_str(&mut out, &c.name);
                out.push(match c.ty {
                    DataType::Bool => 0,
                    DataType::Int => 1,
                    DataType::Float => 2,
                    DataType::Text => 3,
                    DataType::Bytes => 4,
                });
                out.push(u8::from(c.nullable));
            }
            out.extend_from_slice(&(t.schema.primary_key.len() as u32).to_le_bytes());
            for &pk in &t.schema.primary_key {
                out.extend_from_slice(&(pk as u32).to_le_bytes());
            }
            out.extend_from_slice(&(t.heap.pages().len() as u32).to_le_bytes());
            for &p in t.heap.pages() {
                out.extend_from_slice(&p.to_le_bytes());
            }
            out.extend_from_slice(&(t.indexes.len() as u32).to_le_bytes());
            for (def, _) in &t.indexes {
                put_str(&mut out, &def.name);
                out.extend_from_slice(&(def.columns.len() as u32).to_le_bytes());
                for &c in &def.columns {
                    out.extend_from_slice(&(c as u32).to_le_bytes());
                }
                out.push(u8::from(def.unique));
            }
        }
        out
    }

    /// Reconstructs a catalog from [`Catalog::encode`] output, rebuilding
    /// heap metadata and every index from the pager's pages.
    pub fn decode(blob: &[u8], pager: &Pager) -> DbResult<Catalog> {
        struct Reader<'a>(&'a [u8], usize);
        impl Reader<'_> {
            fn u32(&mut self) -> DbResult<u32> {
                let b = self
                    .0
                    .get(self.1..self.1 + 4)
                    .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
                self.1 += 4;
                Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
            }
            fn byte(&mut self) -> DbResult<u8> {
                let b = *self
                    .0
                    .get(self.1)
                    .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
                self.1 += 1;
                Ok(b)
            }
            fn str(&mut self) -> DbResult<String> {
                let len = self.u32()? as usize;
                let b = self
                    .0
                    .get(self.1..self.1 + len)
                    .ok_or_else(|| DbError::Storage("truncated catalog".into()))?;
                self.1 += len;
                String::from_utf8(b.to_vec())
                    .map_err(|_| DbError::Storage("catalog string is not UTF-8".into()))
            }
        }
        let mut r = Reader(blob, 0);
        let mut catalog = Catalog::new();
        let n_tables = r.u32()?;
        for _ in 0..n_tables {
            let name = r.str()?;
            let n_cols = r.u32()?;
            let mut columns = Vec::with_capacity(n_cols as usize);
            for _ in 0..n_cols {
                let cname = r.str()?;
                let ty = match r.byte()? {
                    0 => DataType::Bool,
                    1 => DataType::Int,
                    2 => DataType::Float,
                    3 => DataType::Text,
                    4 => DataType::Bytes,
                    t => return Err(DbError::Storage(format!("bad type tag {t}"))),
                };
                let nullable = r.byte()? != 0;
                columns.push(ColumnDef {
                    name: cname,
                    ty,
                    nullable,
                });
            }
            // Column ordinals come off disk: validate them here so a
            // corrupt catalog surfaces as a storage error at open instead
            // of an out-of-bounds panic in the index rebuild below.
            let n_pk = r.u32()?;
            let mut primary_key = Vec::with_capacity(n_pk as usize);
            for _ in 0..n_pk {
                let c = r.u32()? as usize;
                if c >= columns.len() {
                    return Err(DbError::Storage(format!(
                        "catalog: primary-key column {c} out of range for table {name}"
                    )));
                }
                primary_key.push(c);
            }
            let n_pages = r.u32()?;
            let mut pages: Vec<PageId> = Vec::with_capacity(n_pages as usize);
            for _ in 0..n_pages {
                pages.push(r.u32()?);
            }
            let n_indexes = r.u32()?;
            let mut index_defs = Vec::with_capacity(n_indexes as usize);
            for _ in 0..n_indexes {
                let iname = r.str()?;
                let n_ic = r.u32()?;
                let mut cols = Vec::with_capacity(n_ic as usize);
                for _ in 0..n_ic {
                    let c = r.u32()? as usize;
                    if c >= columns.len() {
                        return Err(DbError::Storage(format!(
                            "catalog: index {iname} column {c} out of range for table {name}"
                        )));
                    }
                    cols.push(c);
                }
                let unique = r.byte()? != 0;
                index_defs.push(IndexDef {
                    name: iname,
                    columns: cols,
                    unique,
                });
            }
            catalog.create_table(TableSchema {
                name: name.clone(),
                columns,
                primary_key,
            })?;
            let t = catalog.table_mut(&name)?;
            t.heap = HeapFile::from_pages(pages, pager)?;
            t.indexes = index_defs.into_iter().map(|d| (d, BTree::new())).collect();
            t.rebuild_indexes(pager)?;
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_schema() -> TableSchema {
        TableSchema {
            name: "node".into(),
            columns: vec![
                ColumnDef {
                    name: "doc".into(),
                    ty: DataType::Int,
                    nullable: false,
                },
                ColumnDef {
                    name: "pos".into(),
                    ty: DataType::Int,
                    nullable: false,
                },
                ColumnDef {
                    name: "tag".into(),
                    ty: DataType::Text,
                    nullable: true,
                },
            ],
            primary_key: vec![0, 1],
        }
    }

    fn setup() -> (Pager, Catalog) {
        let pager = Pager::in_memory();
        let mut catalog = Catalog::new();
        catalog.create_table(node_schema()).unwrap();
        (pager, catalog)
    }

    #[test]
    fn insert_and_pk_lookup() {
        let (pager, mut catalog) = setup();
        let t = catalog.table_mut("node").unwrap();
        for i in 0..100 {
            t.insert_row(&pager, vec![Value::Int(1), Value::Int(i), Value::text("x")])
                .unwrap();
        }
        let rid = t.pk_lookup(&[Value::Int(1), Value::Int(42)]).unwrap();
        let row = t.get_row(&pager, rid).unwrap();
        assert_eq!(row[1], Value::Int(42));
        assert!(t.pk_lookup(&[Value::Int(2), Value::Int(42)]).is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let (pager, mut catalog) = setup();
        let t = catalog.table_mut("node").unwrap();
        t.insert_row(&pager, vec![Value::Int(1), Value::Int(1), Value::Null])
            .unwrap();
        let err = t
            .insert_row(&pager, vec![Value::Int(1), Value::Int(1), Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn secondary_index_tracks_updates_and_deletes() {
        let (pager, mut catalog) = setup();
        catalog
            .create_index(
                &pager,
                "node",
                IndexDef {
                    name: "node_tag".into(),
                    columns: vec![2],
                    unique: false,
                },
            )
            .unwrap();
        let t = catalog.table_mut("node").unwrap();
        let mut rids = Vec::new();
        for i in 0..10 {
            rids.push(
                t.insert_row(
                    &pager,
                    vec![
                        Value::Int(1),
                        Value::Int(i),
                        Value::text(if i % 2 == 0 { "even" } else { "odd" }),
                    ],
                )
                .unwrap(),
            );
        }
        let key = |s: &str| encode_key(&[Value::text(s)]);
        let evens = t.index_range(
            Some(0),
            Bound::Included(key("even").as_slice()),
            Bound::Included([key("even"), vec![0xFF; 9]].concat().as_slice()),
            false,
        );
        assert_eq!(evens.len(), 5);
        // Update row 0's tag; the index must follow.
        t.update_row(
            &pager,
            rids[0],
            vec![Value::Int(1), Value::Int(0), Value::text("odd")],
        )
        .unwrap();
        let evens = t.index_range(
            Some(0),
            Bound::Included(key("even").as_slice()),
            Bound::Included([key("even"), vec![0xFF; 9]].concat().as_slice()),
            false,
        );
        assert_eq!(evens.len(), 4);
        // Delete an odd row.
        t.delete_row(&pager, rids[1]).unwrap();
        let odds = t.index_range(
            Some(0),
            Bound::Included(key("odd").as_slice()),
            Bound::Included([key("odd"), vec![0xFF; 9]].concat().as_slice()),
            false,
        );
        assert_eq!(odds.len(), 5, "4 original odds - 1 deleted + 1 updated");
    }

    #[test]
    fn pk_range_scan_is_ordered() {
        let (pager, mut catalog) = setup();
        let t = catalog.table_mut("node").unwrap();
        for i in (0..50).rev() {
            t.insert_row(&pager, vec![Value::Int(1), Value::Int(i), Value::Null])
                .unwrap();
        }
        let lower = encode_key(&[Value::Int(1), Value::Int(10)]);
        let upper = encode_key(&[Value::Int(1), Value::Int(20)]);
        let rids = t.index_range(
            None,
            Bound::Included(lower.as_slice()),
            Bound::Excluded(upper.as_slice()),
            false,
        );
        let got: Vec<i64> = rids
            .iter()
            .map(|&rid| match &t.get_row(&pager, rid).unwrap()[1] {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, (10..20).collect::<Vec<i64>>());
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let (pager, mut catalog) = setup();
        catalog
            .create_index(
                &pager,
                "node",
                IndexDef {
                    name: "uniq_tag".into(),
                    columns: vec![2],
                    unique: true,
                },
            )
            .unwrap();
        let t = catalog.table_mut("node").unwrap();
        t.insert_row(&pager, vec![Value::Int(1), Value::Int(1), Value::text("a")])
            .unwrap();
        assert!(t
            .insert_row(&pager, vec![Value::Int(1), Value::Int(2), Value::text("a")])
            .is_err());
    }

    #[test]
    fn create_drop_table_and_name_lookup() {
        let (_pager, mut catalog) = setup();
        assert!(catalog.has_table("NODE"), "case-insensitive");
        assert!(catalog.create_table(node_schema()).is_err(), "duplicate");
        catalog.drop_table("node").unwrap();
        assert!(!catalog.has_table("node"));
        assert!(catalog.drop_table("node").is_err());
    }

    #[test]
    fn catalog_encode_decode_roundtrip_with_index_rebuild() {
        let (pager, mut catalog) = setup();
        catalog
            .create_index(
                &pager,
                "node",
                IndexDef {
                    name: "node_tag".into(),
                    columns: vec![2],
                    unique: false,
                },
            )
            .unwrap();
        let t = catalog.table_mut("node").unwrap();
        for i in 0..200 {
            t.insert_row(
                &pager,
                vec![
                    Value::Int(1),
                    Value::Int(i),
                    Value::text(format!("tag{}", i % 5)),
                ],
            )
            .unwrap();
        }
        let blob = catalog.encode();
        let restored = Catalog::decode(&blob, &pager).unwrap();
        let rt = restored.table("node").unwrap();
        assert_eq!(rt.row_count(), 200);
        assert_eq!(rt.schema, catalog.table("node").unwrap().schema);
        assert_eq!(rt.indexes.len(), 1);
        assert_eq!(rt.indexes[0].1.len(), 200, "index rebuilt");
        let rid = rt.pk_lookup(&[Value::Int(1), Value::Int(77)]).unwrap();
        assert_eq!(rt.get_row(&pager, rid).unwrap()[1], Value::Int(77));
    }
}
