#![warn(missing_docs)]
//! `ordxml-rdbms` — an embedded relational database engine.
//!
//! This crate is the relational substrate of the `ordxml` workspace: the
//! paper ("Storing and Querying Ordered XML Using a Relational Database
//! System", SIGMOD 2002) shreds XML into relations and runs translated SQL
//! over a relational database system, so the workspace ships one.
//!
//! Feature set (what the XPath-to-SQL translation layer needs, built
//! properly):
//!
//! * slotted-page storage with an in-memory or file-backed pager and a
//!   clock-replacement buffer pool ([`storage`]);
//! * B+tree indexes over order-preserving composite keys ([`btree`],
//!   [`value::encode_key`]) — primary keys and secondary indexes, range and
//!   prefix scans in both directions;
//! * a SQL subset ([`sql`]): `CREATE TABLE` / `CREATE INDEX` / `DROP TABLE`,
//!   `INSERT`, `UPDATE`, `DELETE`, and `SELECT` with multi-table joins,
//!   `WHERE`, correlated scalar subqueries, aggregates, `GROUP BY`,
//!   `ORDER BY`, `LIMIT`/`OFFSET`, `DISTINCT`, and `?` parameters;
//! * a planner ([`plan`]) that pushes predicates down, picks index scans for
//!   sargable conjuncts, chooses index-nested-loop vs hash joins, and
//!   removes sorts an index already satisfies;
//! * an operator-at-a-time executor ([`exec`]) with per-query statistics (rows
//!   read, index lookups, pages touched) that the benchmark harness reports.
//!
//! # Quickstart
//!
//! ```
//! use ordxml_rdbms::{Database, Value};
//!
//! let mut db = Database::in_memory();
//! db.execute("CREATE TABLE t (a INTEGER, b TEXT, PRIMARY KEY (a))", &[]).unwrap();
//! db.execute("INSERT INTO t VALUES (?, ?)", &[Value::Int(1), Value::text("one")]).unwrap();
//! db.execute("INSERT INTO t VALUES (2, 'two')", &[]).unwrap();
//! let rows = db.query("SELECT b FROM t WHERE a >= ? ORDER BY a", &[Value::Int(1)]).unwrap();
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows[0][0], Value::text("one"));
//! ```

pub mod btree;
pub mod catalog;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod governance;
pub mod latch;
pub mod obs;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod trace;
pub mod value;

pub use btree::BTreeCounters;
pub use db::{Database, DbSnapshot, Durability, QueryResult, SqlRead, StatementTrace, StoreHealth};
pub use error::{DbError, DbResult};
pub use exec::{ExecStats, OpProfile, Profiler};
pub use schema::{ColumnDef, IndexDef, TableSchema};
pub use storage::{FaultInjector, RecoveryReport};
pub use value::{decode_range_batch, encode_range_batch, DataType, RangeSpec, Row, Value};
